"""SQL code generation (§7): shredded / let-inserted queries → SQL:1999.

Two schemes:

* **flat** (default): the let-inserted form, with ``index`` realised as
  ``ROW_NUMBER() OVER (ORDER BY …)`` and the let-bound outer query as a CTE
  (or an inlined FROM-subquery under the §8 "inline WITH" optimisation);
* **natural** (§6.1): plain SQL — all where-clauses amalgamated, dynamic
  indexes are the key columns of every generator in scope, padded with
  NULLs to a per-query width (the cost the paper attributes to natural
  indexes: wider rows, more data movement).

Determinism note (§7): the paper orders ``row_number`` by all columns of
all tables referenced from the current subquery, listing the outer query's
stored index (``z.i2``) *before* the inner generators' columns; with the
assumed unique ``id`` keys any position works.  We place ``z.idx`` *last*
so the ordering stays consistent with the child query's CTE (which
recomputes the same prefix join without an idx column) even for keyless
tables containing fully duplicate rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import SqlGenerationError
from repro.flatten.flatten import (
    FlatColumn,
    KIND_BASE,
    KIND_INDEX_DYN,
    KIND_INDEX_TAG,
    flatten_type,
)
from repro.flatten.unflatten import unflatten_value
from repro.letins.ast import (
    IndexPrim,
    LetComp,
    LetIndex,
    LetQuery,
    OuterSubquery,
    ZIndex,
    ZProj,
)
from repro.letins.translate import let_insert
from repro.normalise.normal_form import (
    BaseExpr,
    ConstNF,
    EmptyNF,
    Generator,
    NormQuery,
    ParamNF,
    PrimNF,
    TRUE_NF,
    VarField,
)
from repro.nrc.schema import Schema
from repro.nrc.types import RecordType, Type
from repro.shred.shred_types import INDEX, inner_shred
from repro.shred.shredded_ast import (
    IN,
    IndexRef,
    ShredComp,
    ShredQuery,
    SRecord,
)
from repro.sql.ast import (
    BinOp,
    Col,
    CteRef,
    Lit,
    NotExists,
    NotOp,
    Placeholder,
    RowNumber,
    SelectCore,
    SelectItem,
    SqlExpr,
    Statement,
    SubqueryRef,
    TableRef,
    placeholder_names,
)
from repro.sql.render import render_statement

__all__ = ["SqlOptions", "CompiledSql", "compile_shredded"]


@dataclass(frozen=True)
class SqlOptions:
    """Code-generation knobs: the §8 optimisations, the §6 schemes, the §9
    extensions, and the logical optimizer (:mod:`repro.sql.optimizer`).

    ``optimize`` master-switches the optimizer; the ``opt_*`` flags gate
    individual rules (only consulted when ``optimize`` is on).  All of them
    participate in the plan-cache key automatically — the whole (frozen,
    hashable) options value is a key component — so optimised and
    unoptimised plans never collide in a cache.
    """

    scheme: str = "flat"  # "flat" or "natural"
    inline_with: bool = False  # §8: inline WITH clauses as subqueries
    order_by_keys: bool = False  # §8: use keys for row numbering
    dedup_cte: bool = False  # extension: share identical outer CTEs
    ordered: bool = False  # §9 list semantics: deterministic row order
    pretty: bool = True
    optimize: bool = False  # run the logical optimizer over the SQL AST
    opt_fold: bool = True  # constant folding + dead-branch elimination
    opt_flatten: bool = True  # trivial-subquery flattening
    opt_dedup: bool = True  # within-statement CTE deduplication
    opt_pushdown: bool = True  # predicate pushdown into CTEs/subqueries
    opt_prune: bool = True  # CTE projection pruning
    opt_shared: bool = True  # cross-statement shared scans (package level)
    #: Stage verification (:mod:`repro.check`): ``True``/``False`` force it,
    #: ``None`` (default) defers to ``REPRO_VERIFY`` / pytest-or-CI
    #: detection (see :func:`repro.check.verifier.verification_enabled`).
    verify: bool | None = None

    def __post_init__(self) -> None:
        if self.scheme not in ("flat", "natural"):
            raise SqlGenerationError(f"unknown SQL scheme {self.scheme!r}")
        if self.ordered and self.scheme != "flat":
            raise SqlGenerationError(
                "ordered (list-semantics) output requires the flat scheme"
            )
        if self.verify not in (None, True, False):
            raise SqlGenerationError(
                f"verify must be True, False or None, got {self.verify!r}"
            )


@dataclass
class CompiledSql:
    """One shredded query compiled to SQL, with decode metadata.

    ``cache_key`` carries the plan-cache key the statement was compiled
    under (None for uncached compiles); the precompiled tuple decoders are
    memoised per instance, so a cached plan decodes every subsequent run
    through the same closures.
    """

    statement: Statement
    sql: str
    row_type: RecordType  # ⟨item: F, outer: Index⟩
    width_fn: Callable[[tuple[str, ...]], int] | int
    natural: bool
    columns: tuple[str, ...] = field(default=())
    #: Host-parameter names this statement binds at execution time (sorted).
    params: tuple[str, ...] = field(default=())
    #: Optimizer rules that actually rewrote this statement, in application
    #: order (the fired-rule trace; empty when the optimizer is off or
    #: every rule was a no-op).
    fired_rules: tuple[str, ...] = field(default=(), compare=False)
    cache_key: object = field(default=None, compare=False)
    _decoders: tuple | None = field(
        default=None, repr=False, compare=False
    )
    _key_decoders: tuple | None = field(
        default=None, repr=False, compare=False
    )
    #: (table, columns) index hints mined from the statement — memoised by
    #: the batched executor so repeat runs of a cached plan skip the AST walk.
    index_hints: tuple | None = field(default=None, repr=False, compare=False)

    def decoders(self) -> tuple[Callable, Callable]:
        """(outer, item) tuple-level decoders, compiled once per plan.

        Each decoder maps one raw SQL tuple straight to its value by
        column *position* — no intermediate name→cell dict per row (the
        batched engine's fast path).  Matches :func:`unflatten_value` on
        every row (the slow reference path, kept for the property tests).
        """
        if self._decoders is None:
            self._decoders = self._build_decoders(as_keys=False)
        return self._decoders

    def key_decoders(self) -> tuple[Callable, Callable]:
        """Like :meth:`decoders`, but index leaves decode to plain tuples
        ``(tag, dyn)`` instead of :class:`FlatIndex`/:class:`NaturalIndex`
        objects.

        Index values never reach stitched output — they only ever serve as
        grouping/lookup keys joining a parent's item rows to a child's
        outer rows — so the batched engine trades the index objects for
        raw tuples: no per-row dataclass construction, cheaper hashing.
        Both sides of every join decode through the same scheme, keeping
        keys consistent across nesting levels.
        """
        if self._key_decoders is None:
            self._key_decoders = self._build_decoders(as_keys=True)
        return self._key_decoders

    def _build_decoders(self, as_keys: bool) -> tuple[Callable, Callable]:
        positions = {name: i for i, name in enumerate(self.columns)}
        outer_fn = _compile_decoder(
            INDEX, ("outer",), positions, self.width_fn, self.natural, as_keys
        )
        item_fn = _compile_decoder(
            self.row_type.field_type("item"),
            ("item",),
            positions,
            self.width_fn,
            self.natural,
            as_keys,
        )
        return (outer_fn, item_fn)

    def decode_rows(
        self, raw_rows: Sequence[Sequence[object]]
    ) -> list[tuple[object, object]]:
        """Raw SQL tuples → ⟨index, value⟩ pairs (unflattening, App. E).

        The literal App. E reading — one name→cell dict and one
        :func:`unflatten_value` type walk per row.  The per-path engine
        uses it; the batched engine's precompiled :meth:`decoders` are
        property-tested against it.
        """
        pairs = []
        for raw in raw_rows:
            cells = dict(zip(self.columns, raw))
            row = unflatten_value(
                self.row_type, cells, self.width_fn, natural=self.natural
            )
            pairs.append((row["outer"], row["item"]))
        return pairs

    def decode_rows_fast(
        self, raw_rows: Sequence[Sequence[object]]
    ) -> list[tuple[object, object]]:
        """:meth:`decode_rows` through the precompiled tuple decoders."""
        decode_outer, decode_item = self.decoders()
        return [(decode_outer(raw), decode_item(raw)) for raw in raw_rows]


def _compile_decoder(
    f: Type,
    path: tuple[str, ...],
    positions: dict[str, int],
    width_fn: Callable[[tuple[str, ...]], int] | int,
    natural: bool,
    as_keys: bool = False,
) -> Callable:
    """Compile flat type ``f`` at ``path`` to a raw-tuple → value closure.

    The closure tree mirrors :func:`unflatten_value` exactly, but resolves
    every column to its tuple position at compile time.  With ``as_keys``,
    index leaves decode to bare ``(tag, dyn)`` tuples (see
    :meth:`CompiledSql.key_decoders`).
    """
    from repro.nrc.types import BOOL, BaseType
    from repro.shred.indexes import FlatIndex, NaturalIndex
    from repro.shred.shred_types import IndexType

    if isinstance(f, IndexType):
        tag_pos = positions[FlatColumn(path, KIND_INDEX_TAG).name]
        width = width_fn if isinstance(width_fn, int) else width_fn(path)
        dyn_pos = tuple(
            positions[FlatColumn(path, KIND_INDEX_DYN, dyn_position=i).name]
            for i in range(1, width + 1)
        )
        if natural:
            if as_keys:
                return lambda raw, _tag=tag_pos, _dyns=dyn_pos: (
                    raw[_tag],
                    tuple(raw[pos] for pos in _dyns if raw[pos] is not None),
                )

            def decode_natural(
                raw: tuple,
                _tag: int = tag_pos,
                _dyns: tuple = dyn_pos,
            ) -> NaturalIndex:
                return NaturalIndex(
                    str(raw[_tag]),
                    tuple(
                        raw[pos] for pos in _dyns if raw[pos] is not None
                    ),
                )

            return decode_natural
        if len(dyn_pos) != 1:
            raise SqlGenerationError(
                "flat indexes have exactly one dynamic column"
            )
        if as_keys:
            return lambda raw, _tag=tag_pos, _dyn=dyn_pos[0]: (
                raw[_tag],
                raw[_dyn],
            )

        def decode_flat(
            raw: tuple, _tag: int = tag_pos, _dyn: int = dyn_pos[0]
        ) -> FlatIndex:
            return FlatIndex(str(raw[_tag]), int(raw[_dyn]))

        return decode_flat
    if isinstance(f, BaseType):
        pos = positions[FlatColumn(path, KIND_BASE, base=f).name]
        if f == BOOL:
            return lambda raw, _pos=pos: bool(raw[_pos])
        return lambda raw, _pos=pos: raw[_pos]
    if isinstance(f, RecordType):
        subdecoders = tuple(
            (
                label,
                _compile_decoder(
                    ftype, path + (label,), positions, width_fn, natural, as_keys
                ),
            )
            for label, ftype in f.fields
        )

        def decode_record(raw: tuple, _subs: tuple = subdecoders) -> dict:
            return {label: decode(raw) for label, decode in _subs}

        return decode_record
    raise SqlGenerationError(f"cannot compile a decoder for type {f}")


def compile_shredded(
    shredded: ShredQuery,
    element_type: Type,
    schema: Schema,
    options: SqlOptions = SqlOptions(),
    cache_key: object = None,
    tracer=None,
) -> CompiledSql:
    """Compile one shredded query whose bag element type is ``element_type``.

    ``cache_key`` (threaded down from the plan cache, when one is active)
    is recorded on the compiled statement for provenance/debugging.
    ``tracer`` (a :class:`repro.obs.Tracer`) receives an ``optimize``
    span with one child per attempted rule.
    """
    item_type = inner_shred(element_type)
    row_type = RecordType((("item", item_type), ("outer", INDEX)))
    if options.scheme == "natural":
        compiled = _compile_natural(shredded, row_type, schema, options)
    else:
        compiled = _compile_flat(let_insert(shredded), row_type, schema, options)
    from repro.check.verifier import verification_enabled

    verify = verification_enabled(options)
    if options.optimize:
        from repro.sql.optimizer import optimize_statement

        trace: list[str] = []
        timings: list[tuple[str, float, bool]] | None = (
            [] if tracer is not None else None
        )
        on_rewrite = None
        if verify:
            from repro.check.verifier import rewrite_hook

            on_rewrite = rewrite_hook(schema)
        optimized = optimize_statement(
            compiled.statement,
            options,
            trace=trace,
            on_rewrite=on_rewrite,
            timings=timings,
        )
        if tracer is not None and timings is not None:
            span = tracer.record(
                "optimize", sum(m for _r, m, _f in timings)
            )
            for rule, millis, fired in timings:
                span.record(rule, millis, fired=fired)
        if optimized != compiled.statement:
            compiled.statement = optimized
            compiled.sql = render_statement(optimized, options.pretty)
        compiled.fired_rules = tuple(trace)
    compiled.params = placeholder_names(compiled.statement)
    compiled.cache_key = cache_key
    if verify:
        from repro.check.verifier import verify_compiled_sql

        verify_compiled_sql(compiled, schema)
    return compiled


# --------------------------------------------------------------------------
# Shared expression rendering.


class _ExprContext:
    """Rendering context: how to resolve z-projections."""

    def __init__(self, schema: Schema, z_alias: str | None = None) -> None:
        self.schema = schema
        self.z_alias = z_alias


_OPS = {
    "=": "=",
    "<>": "<>",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
    "+": "+",
    "-": "-",
    "*": "*",
    "div": "/",
    "mod": "%",
    "and": "AND",
    "or": "OR",
    "^": "||",
}


def _expr(e: BaseExpr, ctx: _ExprContext) -> SqlExpr:
    if isinstance(e, VarField):
        return Col(e.var, e.label)
    if isinstance(e, ConstNF):
        return Lit(e.value)
    if isinstance(e, ParamNF):
        return Placeholder(e.name)
    if isinstance(e, ZProj):
        if ctx.z_alias is None:
            raise SqlGenerationError("z-projection outside a let body")
        return Col(ctx.z_alias, _z_column(e.position, e.label))
    if isinstance(e, PrimNF):
        if e.op == "not":
            return NotOp(_expr(e.args[0], ctx))
        sql_op = _OPS.get(e.op)
        if sql_op is None or len(e.args) != 2:
            raise SqlGenerationError(f"no SQL spelling for primitive {e.op!r}")
        return BinOp(sql_op, _expr(e.args[0], ctx), _expr(e.args[1], ctx))
    if isinstance(e, EmptyNF):
        return _empty_probe(e.query, ctx)
    raise SqlGenerationError(f"cannot render base term {e!r}")


def _empty_probe(query: NormQuery, ctx: _ExprContext) -> SqlExpr:
    """empty L → a conjunction of NOT EXISTS probes, one per comprehension."""
    from repro.shred.shredded_ast import empty_probe_parts

    probes: list[SqlExpr] = [
        NotExists(_exists_core(generators, conditions, ctx))
        for generators, conditions in empty_probe_parts(query)
    ]
    if not probes:
        return Lit(True)  # empty(∅) is vacuously true
    return _conj_sql(probes)


def _exists_core(
    generators: tuple[Generator, ...],
    conditions: list[BaseExpr],
    ctx: _ExprContext,
) -> SelectCore:
    where = _where_sql(conditions, ctx)
    return SelectCore(
        items=(),
        from_items=tuple(TableRef(g.table, g.var) for g in generators),
        where=where,
    )


def _where_sql(
    conditions: list[BaseExpr], ctx: _ExprContext
) -> SqlExpr | None:
    exprs = [_expr(c, ctx) for c in conditions if c != TRUE_NF]
    if not exprs:
        return None
    return _conj_sql(exprs)


def _conj_sql(exprs: list[SqlExpr]) -> SqlExpr:
    result = exprs[0]
    for e in exprs[1:]:
        result = BinOp("AND", result, e)
    return result


def _z_column(position: int, label: str) -> str:
    """The exposed column name for expand(y_position, t).label."""
    return f"c{position}_{label}"


# --------------------------------------------------------------------------
# Flat scheme (let-inserted, ROW_NUMBER).


def _order_columns(
    table: str, schema: Schema, options: SqlOptions
) -> tuple[str, ...]:
    """Columns used to order a generator's rows deterministically."""
    table_schema = schema.table(table)
    if options.order_by_keys and table_schema.has_declared_key:
        return table_schema.key_columns
    return tuple(sorted(table_schema.column_names))


def _compile_flat(
    let_query: LetQuery,
    row_type: RecordType,
    schema: Schema,
    options: SqlOptions,
) -> CompiledSql:
    flat_columns = flatten_type(row_type, 1)
    names = tuple(c.name for c in flat_columns)
    ctes: list[tuple[str, SelectCore]] = []
    cte_by_body: dict[str, str] = {}  # rendered core → shared CTE name
    selects: list[SelectCore] = []

    for k, comp in enumerate(let_query.comps, start=1):
        z_alias = f"z{k}"
        ctx = _ExprContext(schema, z_alias if comp.outer else None)

        from_items: list = []
        if comp.outer is not None:
            outer_core = _outer_select(comp.outer, schema, options)
            if options.inline_with:
                from_items.append(SubqueryRef(outer_core, z_alias))
            else:
                from_items.append(
                    CteRef(
                        _cte_name(outer_core, ctes, cte_by_body, options),
                        z_alias,
                    )
                )
        from_items.extend(TableRef(g.table, g.var) for g in comp.generators)

        where = _where_sql([comp.where], ctx)
        inner_order = _inner_order(comp, z_alias, schema, options)

        items: list[SelectItem] = []
        for column in flat_columns:
            items.append(
                SelectItem(
                    _flat_column_expr(column, comp, ctx, inner_order),
                    column.name,
                )
            )
        if options.ordered:
            # §9 list semantics: branch position + per-branch row order,
            # appended after the data columns so decoding can ignore them.
            items.append(SelectItem(Lit(k), "__branch"))
            items.append(SelectItem(RowNumber(inner_order), "__ord"))
        selects.append(
            SelectCore(tuple(items), tuple(from_items), where)
        )

    if not selects:
        empty = _empty_select(names)
        if options.ordered:
            empty = SelectCore(
                empty.items
                + (SelectItem(Lit(0), "__branch"), SelectItem(Lit(0), "__ord")),
                empty.from_items,
                empty.where,
            )
        selects.append(empty)

    order_by = ("__branch", "__ord") if options.ordered else ()
    statement = Statement(tuple(ctes), tuple(selects), names, order_by)
    return CompiledSql(
        statement=statement,
        sql=render_statement(statement, options.pretty),
        row_type=row_type,
        width_fn=1,
        natural=False,
        columns=names,
    )


def _cte_name(
    outer_core: SelectCore,
    ctes: list[tuple[str, SelectCore]],
    cte_by_body: dict[str, str],
    options: SqlOptions,
) -> str:
    """Register an outer query as a CTE, sharing identical ones when the
    ``dedup_cte`` extension is on (sibling branches over the same prefix
    produce byte-identical outer queries, cf. q′2's two copies of q)."""
    if options.dedup_cte:
        from repro.sql.render import render_select

        body = render_select(outer_core)
        existing = cte_by_body.get(body)
        if existing is not None:
            return existing
        name = f"q{len(ctes) + 1}"
        cte_by_body[body] = name
        ctes.append((name, outer_core))
        return name
    name = f"q{len(ctes) + 1}"
    ctes.append((name, outer_core))
    return name


def _empty_select(names: tuple[str, ...]) -> SelectCore:
    """∅: a query with no comprehensions — SELECT NULL … WHERE 0."""
    return SelectCore(
        tuple(SelectItem(Lit(None), name) for name in names),
        (),
        Lit(False),
    )


def _outer_select(
    outer: OuterSubquery, schema: Schema, options: SqlOptions
) -> SelectCore:
    """q = for (Ḡout where Xout) return ⟨expand(ȳ), index⟩."""
    ctx = _ExprContext(schema)
    items: list[SelectItem] = []
    order: list[SqlExpr] = []
    for position, g in enumerate(outer.generators, start=1):
        for column, _ in schema.table(g.table).columns:
            items.append(
                SelectItem(Col(g.var, column), _z_column(position, column))
            )
        for column in _order_columns(g.table, schema, options):
            order.append(Col(g.var, column))
    items.append(SelectItem(RowNumber(tuple(order)), "idx"))
    return SelectCore(
        tuple(items),
        tuple(TableRef(g.table, g.var) for g in outer.generators),
        _where_sql([outer.where], ctx),
    )


def _inner_order(
    comp: LetComp, z_alias: str, schema: Schema, options: SqlOptions
) -> tuple[SqlExpr, ...]:
    """ORDER BY for the main subquery's ROW_NUMBER: the z-exposed columns,
    then the inner generators' columns, then z.idx (tie-break; see module
    docstring)."""
    order: list[SqlExpr] = []
    if comp.outer is not None:
        for position, g in enumerate(comp.outer.generators, start=1):
            for column in _order_columns(g.table, schema, options):
                order.append(Col(z_alias, _z_column(position, column)))
    for g in comp.generators:
        for column in _order_columns(g.table, schema, options):
            order.append(Col(g.var, column))
    if comp.outer is not None:
        order.append(Col(z_alias, "idx"))
    return tuple(order)


def _flat_column_expr(
    column: FlatColumn, comp: LetComp, ctx: _ExprContext, inner_order: tuple[SqlExpr, ...]
) -> SqlExpr:
    if column.path[0] == "outer":
        if column.kind == KIND_INDEX_TAG:
            return Lit(comp.body_outer.tag)
        if column.kind == KIND_INDEX_DYN:
            return _dyn_expr(comp.body_outer, ctx, inner_order)
        raise SqlGenerationError(f"unexpected outer column {column!r}")
    term = _descend(comp.body_value, column.path[1:])
    if column.kind == KIND_BASE:
        if not isinstance(term, BaseExpr):
            raise SqlGenerationError(f"expected base term at {column.path}")
        return _expr(term, ctx)
    if not isinstance(term, LetIndex):
        raise SqlGenerationError(f"expected an index at {column.path}")
    if column.kind == KIND_INDEX_TAG:
        return Lit(term.tag)
    return _dyn_expr(term, ctx, inner_order)


def _dyn_expr(
    index: LetIndex, ctx: _ExprContext, inner_order: tuple[SqlExpr, ...]
) -> SqlExpr:
    if isinstance(index.dyn, IndexPrim):
        return RowNumber(inner_order)
    if isinstance(index.dyn, ZIndex):
        if ctx.z_alias is None:
            raise SqlGenerationError("z.2 outside a let body")
        return Col(ctx.z_alias, "idx")
    if isinstance(index.dyn, int):
        return Lit(index.dyn)
    raise SqlGenerationError(f"bad dynamic index {index.dyn!r}")


def _descend(term: object, labels: tuple[str, ...]) -> object:
    current = term
    for label in labels:
        if not isinstance(current, SRecord):
            raise SqlGenerationError(
                f"cannot descend into non-record term at label {label!r}"
            )
        current = current.field(label)
    return current


# --------------------------------------------------------------------------
# Natural scheme (§6.1): plain SQL, key-based indexes, NULL padding.


def _key_arity(generators: tuple[Generator, ...], schema: Schema) -> int:
    return sum(
        len(schema.table(g.table).key_columns) for g in generators
    )


def _compile_natural(
    shredded: ShredQuery,
    row_type: RecordType,
    schema: Schema,
    options: SqlOptions,
) -> CompiledSql:
    outer_width = 1
    inner_width = 1
    for comp in shredded.comps:
        outer_generators = tuple(
            g for block in comp.blocks[:-1] for g in block.generators
        )
        outer_width = max(outer_width, _key_arity(outer_generators, schema))
        inner_width = max(
            inner_width, _key_arity(comp.all_generators, schema)
        )

    def width_fn(path: tuple[str, ...]) -> int:
        return outer_width if path == ("outer",) else inner_width

    flat_columns = flatten_type(row_type, width_fn)
    names = tuple(c.name for c in flat_columns)
    selects: list[SelectCore] = []
    ctx = _ExprContext(schema)

    for comp in shredded.comps:
        generators = comp.all_generators
        conditions = [block.where for block in comp.blocks]
        outer_generators = tuple(
            g for block in comp.blocks[:-1] for g in block.generators
        )
        outer_keys = _key_exprs(outer_generators, schema, outer_width)
        inner_keys = _key_exprs(generators, schema, inner_width)

        items: list[SelectItem] = []
        for column in flat_columns:
            items.append(
                SelectItem(
                    _natural_column_expr(
                        column, comp, ctx, outer_keys, inner_keys
                    ),
                    column.name,
                )
            )
        selects.append(
            SelectCore(
                tuple(items),
                tuple(TableRef(g.table, g.var) for g in generators),
                _where_sql(conditions, ctx),
            )
        )

    if not selects:
        selects.append(_empty_select(names))

    statement = Statement((), tuple(selects), names)
    return CompiledSql(
        statement=statement,
        sql=render_statement(statement, options.pretty),
        row_type=row_type,
        width_fn=width_fn,
        natural=True,
        columns=names,
    )


def _key_exprs(
    generators: tuple[Generator, ...], schema: Schema, width: int
) -> tuple[SqlExpr, ...]:
    exprs: list[SqlExpr] = []
    for g in generators:
        for column in schema.table(g.table).key_columns:
            exprs.append(Col(g.var, column))
    while len(exprs) < width:
        exprs.append(Lit(None))
    return tuple(exprs)


def _natural_column_expr(
    column: FlatColumn,
    comp: ShredComp,
    ctx: _ExprContext,
    outer_keys: tuple[SqlExpr, ...],
    inner_keys: tuple[SqlExpr, ...],
) -> SqlExpr:
    if column.path[0] == "outer":
        if column.kind == KIND_INDEX_TAG:
            return Lit(comp.outer.tag)
        if column.kind == KIND_INDEX_DYN:
            return outer_keys[column.dyn_position - 1]
        raise SqlGenerationError(f"unexpected outer column {column!r}")
    term = _descend(comp.inner, column.path[1:])
    if column.kind == KIND_BASE:
        if not isinstance(term, BaseExpr) or isinstance(term, IndexRef):
            raise SqlGenerationError(f"expected base term at {column.path}")
        return _expr(term, ctx)
    if not isinstance(term, IndexRef) or term.kind != IN:
        raise SqlGenerationError(f"expected a·in at {column.path}")
    if column.kind == KIND_INDEX_TAG:
        return Lit(term.tag)
    return inner_keys[column.dyn_position - 1]
