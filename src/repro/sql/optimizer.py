"""Logical optimisation of the generated SQL (the §8 programme, extended).

The shredding translation emits deliberately naive SQL: every comprehension
re-exposes all outer columns, conditions arrive as the normaliser left them
(``NOT (NOT …)`` chains from ``empty`` hoisting), and the N statements of a
package each recompute the same outer joins.  This module is a small
rewrite engine over the :mod:`repro.sql.ast` that cleans all of that up
*without* changing any statement's result multiset:

Statement-local rules (``optimize_statement``):

* **constant folding** (``opt_fold``) — ``NOT NOT x → x``, boolean
  identity laws (``TRUE AND x → x``, ``FALSE AND x → FALSE``, …), literal
  arithmetic/comparison/concatenation, ``NOT EXISTS (… WHERE FALSE) →
  TRUE``; a ``WHERE`` that folds to ``TRUE`` is dropped, and a UNION ALL
  branch whose ``WHERE`` folds to ``FALSE`` is removed entirely;
* **trivial-subquery flattening** (``opt_flatten``) — a ``SubqueryRef``
  whose core is an identity projection of a single table (no WHERE, no
  window functions, items ``t.c AS c``) collapses to a ``TableRef``;
* **CTE deduplication** (``opt_dedup``) — byte-identical CTE bodies within
  a statement merge into one (sibling union branches over the same outer
  prefix produce identical outer queries, cf. §8's q′2);
* **predicate pushdown** (``opt_pushdown``) — a WHERE conjunct referencing
  a single CTE/subquery alias moves inside that CTE/subquery.  Guarded:
  the target must not compute ``ROW_NUMBER`` (filtering before numbering
  would renumber the surviving rows, breaking the cross-statement index
  join) and a CTE target must have exactly one consumer.  Note the guard
  makes this rule (and flattening, below) *inert on the flat scheme's
  current output* — every generated outer CTE/subquery carries an ``idx``
  row number — so today they pay off only on hand-built statements and
  future scheme variants; the measured package speedups come from fold,
  dedup, prune and shared scans;
* **projection pruning** (``opt_prune``) — CTE select items never
  referenced by any consumer are dropped (narrower materialisation), and
  CTEs referenced by nobody disappear.  The *main* selects are never
  pruned: their item list is the decode contract.

Package-level rule (``extract_shared_scans``, ``opt_shared``):

* **cross-statement CTE sharing** — a CTE body appearing in ≥2 statements
  of a shredded package is hoisted out of every statement into one
  package-level :class:`SharedScan`.  The executor materialises each scan
  once per package run (``CREATE TABLE … AS SELECT``, visible to every
  pooled connection, dropped afterwards) and the statements reference it
  as a plain table, so the package performs one scan-and-number pass per
  shared subplan instead of one per statement.

Soundness invariants every rule preserves:

* the main selects' item lists (names, order, count) — decoders resolve
  columns by position;
* the multiset of rows each ``ROW_NUMBER`` ranks over — index values join
  statements to each other, so numbering inputs are untouchable;
* SQL three-valued logic — boolean laws are only applied where they hold
  under NULL (``FALSE AND NULL = FALSE``, but ``x AND TRUE → x`` only
  rewrites the ``TRUE`` side away, never invents non-NULL-ness).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable

from repro.sql.ast import (
    BinOp,
    Col,
    CteRef,
    Lit,
    NotExists,
    NotOp,
    RowNumber,
    SelectCore,
    SelectItem,
    SqlExpr,
    Statement,
    SubqueryRef,
    TableRef,
)
from repro.sql.render import render_select

__all__ = [
    "SharedScan",
    "optimize_statement",
    "extract_shared_scans",
    "fold_expr",
    "statement_rule_names",
    "STATEMENT_RULES",
]

TRUE = Lit(True)
FALSE = Lit(False)

#: rule flag name (on SqlOptions) → human-readable description, in
#: application order.  ``repro sql --explain`` and the docs render this.
statement_rule_names: tuple[tuple[str, str], ...] = (
    ("opt_fold", "constant folding + dead-branch elimination"),
    ("opt_flatten", "trivial-subquery flattening"),
    ("opt_dedup", "within-statement CTE deduplication"),
    ("opt_pushdown", "predicate pushdown into CTEs/subqueries"),
    ("opt_prune", "CTE projection pruning + unreferenced-CTE removal"),
)


# --------------------------------------------------------------------------
# Generic traversal helpers.


def _map_expr(
    expr: SqlExpr, core_fn: Callable[[SelectCore], SelectCore]
) -> SqlExpr:
    """Rebuild ``expr`` bottom-up, mapping ``core_fn`` over embedded cores."""
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _map_expr(expr.left, core_fn), _map_expr(expr.right, core_fn)
        )
    if isinstance(expr, NotOp):
        return NotOp(_map_expr(expr.operand, core_fn))
    if isinstance(expr, NotExists):
        return NotExists(core_fn(expr.select))
    if isinstance(expr, RowNumber):
        return RowNumber(tuple(_map_expr(e, core_fn) for e in expr.order_by))
    return expr


def _map_cores(
    statement: Statement, core_fn: Callable[[SelectCore], SelectCore]
) -> Statement:
    """Map ``core_fn`` over every :class:`SelectCore` of a statement,
    innermost first (subqueries and NOT-EXISTS probes included)."""

    def rebuild(core: SelectCore) -> SelectCore:
        items = tuple(
            SelectItem(_map_expr(item.expr, rebuild), item.alias)
            for item in core.items
        )
        from_items = tuple(
            SubqueryRef(rebuild(item.select), item.alias)
            if isinstance(item, SubqueryRef)
            else item
            for item in core.from_items
        )
        where = None if core.where is None else _map_expr(core.where, rebuild)
        return core_fn(SelectCore(items, from_items, where))

    return Statement(
        tuple((name, rebuild(core)) for name, core in statement.ctes),
        tuple(rebuild(core) for core in statement.selects),
        statement.columns,
        statement.order_by,
    )


def _conjuncts(expr: SqlExpr | None) -> list[SqlExpr]:
    if expr is None:
        return []
    if isinstance(expr, BinOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(exprs: list[SqlExpr]) -> SqlExpr | None:
    if not exprs:
        return None
    result = exprs[0]
    for e in exprs[1:]:
        result = BinOp("AND", result, e)
    return result


def _walk_exprs(expr: SqlExpr, visit: Callable[[SqlExpr], None]) -> None:
    """Visit every subexpression, descending into embedded cores."""
    visit(expr)
    if isinstance(expr, BinOp):
        _walk_exprs(expr.left, visit)
        _walk_exprs(expr.right, visit)
    elif isinstance(expr, NotOp):
        _walk_exprs(expr.operand, visit)
    elif isinstance(expr, RowNumber):
        for e in expr.order_by:
            _walk_exprs(e, visit)
    elif isinstance(expr, NotExists):
        _walk_core_exprs(expr.select, visit)


def _walk_core_exprs(
    core: SelectCore, visit: Callable[[SqlExpr], None]
) -> None:
    for item in core.items:
        _walk_exprs(item.expr, visit)
    for from_item in core.from_items:
        if isinstance(from_item, SubqueryRef):
            _walk_core_exprs(from_item.select, visit)
    if core.where is not None:
        _walk_exprs(core.where, visit)


def _contains_rownumber(expr: SqlExpr) -> bool:
    found = [False]

    def visit(e: SqlExpr) -> None:
        if isinstance(e, RowNumber):
            found[0] = True

    _walk_exprs(expr, visit)
    return found[0]


def _core_has_rownumber_items(core: SelectCore) -> bool:
    """Does the core *compute* row numbers?  (Filtering such a core would
    renumber its rows — the pushdown guard.)"""
    return any(_contains_rownumber(item.expr) for item in core.items)


# --------------------------------------------------------------------------
# Rule: constant folding.


def _is_bool_lit(expr: SqlExpr, value: bool) -> bool:
    return isinstance(expr, Lit) and expr.value is value


_COMPARISONS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def _numeric(value: object) -> bool:
    return isinstance(value, (bool, int)) and not isinstance(value, float)


def _fold_literals(op: str, left: Lit, right: Lit) -> SqlExpr | None:
    """Fold a binary operator over two non-NULL literals, where the Python
    result provably matches SQLite's (same-class ints/strings only; ``/``
    and ``%`` are skipped — SQLite truncates toward zero, Python floors)."""
    a, b = left.value, right.value
    if a is None or b is None:
        return None  # NULL propagates; leave three-valued logic to SQLite
    if op in _COMPARISONS:
        if (_numeric(a) and _numeric(b)) or (
            isinstance(a, str) and isinstance(b, str)
        ):
            return Lit(_COMPARISONS[op](a, b))
        return None
    if op in _ARITHMETIC and _numeric(a) and _numeric(b):
        return Lit(_ARITHMETIC[op](int(a), int(b)))
    if op == "||" and isinstance(a, str) and isinstance(b, str):
        return Lit(a + b)
    if op in ("AND", "OR") and isinstance(a, bool) and isinstance(b, bool):
        return Lit(a and b if op == "AND" else a or b)
    return None


def fold_expr(expr: SqlExpr) -> SqlExpr:
    """Bottom-up constant folding, sound under SQL three-valued logic."""
    if isinstance(expr, BinOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if expr.op == "AND":
            # FALSE AND x ≡ FALSE even for x = NULL; TRUE AND x ≡ x.
            if _is_bool_lit(left, False) or _is_bool_lit(right, False):
                return FALSE
            if _is_bool_lit(left, True):
                return right
            if _is_bool_lit(right, True):
                return left
        if expr.op == "OR":
            if _is_bool_lit(left, True) or _is_bool_lit(right, True):
                return TRUE
            if _is_bool_lit(left, False):
                return right
            if _is_bool_lit(right, False):
                return left
        if isinstance(left, Lit) and isinstance(right, Lit):
            folded = _fold_literals(expr.op, left, right)
            if folded is not None:
                return folded
        return BinOp(expr.op, left, right)
    if isinstance(expr, NotOp):
        operand = fold_expr(expr.operand)
        if isinstance(operand, NotOp):
            return operand.operand  # NOT NOT x ≡ x (NULL-safe)
        if isinstance(operand, Lit) and isinstance(operand.value, bool):
            return Lit(not operand.value)
        return NotOp(operand)
    if isinstance(expr, NotExists):
        core = _fold_core(expr.select)
        if _is_bool_lit(core.where if core.where is not None else TRUE, False):
            return TRUE  # probe can never produce a row
        if not core.from_items and core.where is None:
            return FALSE  # SELECT 1 with no FROM always produces one row
        return NotExists(core)
    if isinstance(expr, RowNumber):
        return RowNumber(tuple(fold_expr(e) for e in expr.order_by))
    return expr


def _fold_core(core: SelectCore) -> SelectCore:
    items = tuple(
        SelectItem(fold_expr(item.expr), item.alias) for item in core.items
    )
    where = None if core.where is None else fold_expr(core.where)
    if where is not None and _is_bool_lit(where, True):
        where = None
    return SelectCore(items, core.from_items, where)


def _rule_fold(statement: Statement) -> Statement:
    statement = _map_cores(statement, _fold_core)
    # Dead-branch elimination: a UNION ALL operand whose WHERE folded to
    # FALSE contributes no rows.  Keep at least one branch so the statement
    # stays executable (and keeps its column aliases).
    live = tuple(
        core
        for core in statement.selects
        if not (core.where is not None and _is_bool_lit(core.where, False))
    )
    if not live:
        live = statement.selects[:1]
    if len(live) == len(statement.selects):
        return statement
    return Statement(statement.ctes, live, statement.columns, statement.order_by)


# --------------------------------------------------------------------------
# Rule: trivial-subquery flattening.


def _flatten_core(core: SelectCore) -> SelectCore:
    new_from = []
    for item in core.from_items:
        if isinstance(item, SubqueryRef):
            inner = item.select
            if (
                inner.where is None
                and len(inner.from_items) == 1
                and isinstance(inner.from_items[0], TableRef)
                and inner.items
                and all(
                    isinstance(si.expr, Col)
                    and si.expr.alias == inner.from_items[0].alias
                    and si.expr.name == si.alias
                    for si in inner.items
                )
            ):
                new_from.append(TableRef(inner.from_items[0].table, item.alias))
                continue
        new_from.append(item)
    return SelectCore(core.items, tuple(new_from), core.where)


def _rule_flatten(statement: Statement) -> Statement:
    return _map_cores(statement, _flatten_core)


# --------------------------------------------------------------------------
# Rule: within-statement CTE deduplication.


def _rule_dedup(statement: Statement) -> Statement:
    if len(statement.ctes) < 2:
        return statement
    kept: list[tuple[str, SelectCore]] = []
    by_body: dict[str, str] = {}
    rename: dict[str, str] = {}
    for name, core in statement.ctes:
        body = render_select(core)
        existing = by_body.get(body)
        if existing is None:
            by_body[body] = name
            kept.append((name, core))
        else:
            rename[name] = existing
    if not rename:
        return statement

    def remap(core: SelectCore) -> SelectCore:
        from_items = tuple(
            CteRef(rename.get(item.cte, item.cte), item.alias)
            if isinstance(item, CteRef)
            else item
            for item in core.from_items
        )
        return SelectCore(core.items, from_items, core.where)

    return _map_cores(
        Statement(tuple(kept), statement.selects, statement.columns, statement.order_by),
        remap,
    )


# --------------------------------------------------------------------------
# Rule: predicate pushdown.


def _cte_refcounts(statement: Statement) -> dict[str, int]:
    counts: dict[str, int] = {}

    def count(core: SelectCore) -> SelectCore:
        for item in core.from_items:
            if isinstance(item, CteRef):
                counts[item.cte] = counts.get(item.cte, 0) + 1
        return core

    _map_cores(statement, count)
    return counts


def _single_alias(expr: SqlExpr) -> str | None:
    """The one alias every column of ``expr`` references, or None.

    Conjuncts containing correlated subqueries or window functions are
    never pushed (their aliases cross scopes), signalled by None too.
    """
    aliases: set[str] = set()
    blocked = [False]

    def visit(e: SqlExpr) -> None:
        if isinstance(e, Col):
            aliases.add(e.alias)
        elif isinstance(e, (NotExists, RowNumber)):
            blocked[0] = True

    _walk_exprs(expr, visit)
    if blocked[0] or len(aliases) != 1:
        return None
    return next(iter(aliases))


def _rewrite_through(
    expr: SqlExpr, alias: str, item_map: dict[str, SqlExpr]
) -> SqlExpr | None:
    """``alias.c`` → the defining item expression; None if unmappable."""
    if isinstance(expr, Col):
        if expr.alias != alias:
            return None
        return item_map.get(expr.name)
    if isinstance(expr, BinOp):
        left = _rewrite_through(expr.left, alias, item_map)
        right = _rewrite_through(expr.right, alias, item_map)
        if left is None or right is None:
            return None
        return BinOp(expr.op, left, right)
    if isinstance(expr, NotOp):
        operand = _rewrite_through(expr.operand, alias, item_map)
        if operand is None:
            return None
        return NotOp(operand)
    if isinstance(expr, Lit):
        return expr
    return None  # NotExists / RowNumber never arrive (guarded upstream)


def _push_into(core: SelectCore, predicate: SqlExpr) -> SelectCore:
    where = _conjoin(_conjuncts(core.where) + [predicate])
    return SelectCore(core.items, core.from_items, where)


def _rule_pushdown(statement: Statement) -> Statement:
    refcounts = _cte_refcounts(statement)
    ctes = dict(statement.ctes)
    pushed_into_cte: dict[str, list[SqlExpr]] = {}

    def push_core(core: SelectCore) -> SelectCore:
        if core.where is None:
            return core
        by_alias: dict[str, tuple[str, SelectCore]] = {}
        subqueries: dict[str, SelectCore] = {}
        for item in core.from_items:
            if isinstance(item, CteRef) and item.cte in ctes:
                by_alias[item.alias] = (item.cte, ctes[item.cte])
            elif isinstance(item, SubqueryRef):
                subqueries[item.alias] = item.select
        remaining: list[SqlExpr] = []
        pushed_sub: dict[str, list[SqlExpr]] = {}
        for conjunct in _conjuncts(core.where):
            alias = _single_alias(conjunct)
            target: SelectCore | None = None
            cte_name: str | None = None
            if alias in by_alias:
                cte_name, target = by_alias[alias]
                if refcounts.get(cte_name, 0) != 1:
                    target = None
            elif alias in subqueries:
                target = subqueries[alias]
            if target is None or _core_has_rownumber_items(target):
                remaining.append(conjunct)
                continue
            item_map = {si.alias: si.expr for si in target.items}
            rewritten = _rewrite_through(conjunct, alias, item_map)
            if rewritten is None or _contains_rownumber(rewritten):
                remaining.append(conjunct)
                continue
            if cte_name is not None:
                pushed_into_cte.setdefault(cte_name, []).append(rewritten)
            else:
                pushed_sub.setdefault(alias, []).append(rewritten)
        if len(remaining) == len(_conjuncts(core.where)):
            return core
        from_items = tuple(
            SubqueryRef(
                _push_into(item.select, _conjoin(pushed_sub[item.alias])),
                item.alias,
            )
            if isinstance(item, SubqueryRef) and item.alias in pushed_sub
            else item
            for item in core.from_items
        )
        return SelectCore(core.items, from_items, _conjoin(remaining))

    rewritten = _map_cores(statement, push_core)
    if not pushed_into_cte:
        return rewritten
    new_ctes = tuple(
        (
            name,
            _push_into(core, _conjoin(pushed_into_cte[name]))
            if name in pushed_into_cte
            else core,
        )
        for name, core in rewritten.ctes
    )
    return Statement(
        new_ctes, rewritten.selects, rewritten.columns, rewritten.order_by
    )


# --------------------------------------------------------------------------
# Rule: projection pruning + unreferenced-CTE removal.


def _rule_prune(statement: Statement) -> Statement:
    if not statement.ctes:
        return statement
    # Conservative usage analysis: any Col(alias, c) anywhere in the
    # statement marks column c used for *every* CTE some CteRef binds to
    # that alias (generated aliases are unique; ambiguity only widens the
    # kept set, never narrows it).
    alias_to_ctes: dict[str, set[str]] = {}
    referenced: set[str] = set()

    def collect_refs(core: SelectCore) -> SelectCore:
        for item in core.from_items:
            if isinstance(item, CteRef):
                alias_to_ctes.setdefault(item.alias, set()).add(item.cte)
                referenced.add(item.cte)
        return core

    _map_cores(statement, collect_refs)

    used: dict[str, set[str]] = {name: set() for name, _ in statement.ctes}

    def collect_cols(expr: SqlExpr) -> None:
        if isinstance(expr, Col):
            for cte in alias_to_ctes.get(expr.alias, ()):
                if cte in used:
                    used[cte].add(expr.name)

    for _name, core in statement.ctes:
        _walk_core_exprs(core, collect_cols)
    for core in statement.selects:
        _walk_core_exprs(core, collect_cols)

    changed = False
    new_ctes: list[tuple[str, SelectCore]] = []
    for name, core in statement.ctes:
        if name not in referenced:
            changed = True
            continue
        keep = tuple(si for si in core.items if si.alias in used[name])
        if not keep:
            keep = core.items[:1]  # a CTE must expose at least one column
        if len(keep) != len(core.items):
            changed = True
            core = SelectCore(keep, core.from_items, core.where)
        new_ctes.append((name, core))
    if not changed:
        return statement
    return Statement(
        tuple(new_ctes), statement.selects, statement.columns, statement.order_by
    )


# --------------------------------------------------------------------------
# The statement-level driver.


#: flag name → rule function, in application order (same order as
#: :data:`statement_rule_names`).  Tests monkeypatch entries here to prove
#: the per-rule verifier catches a deliberately broken rewrite.
STATEMENT_RULES: dict[str, Callable[[Statement], Statement]] = {
    "opt_fold": _rule_fold,
    "opt_flatten": _rule_flatten,
    "opt_dedup": _rule_dedup,
    "opt_pushdown": _rule_pushdown,
    "opt_prune": _rule_prune,
}


def optimize_statement(
    statement: Statement,
    options: object,
    trace: list[str] | None = None,
    on_rewrite: Callable[[str, Statement, Statement], None] | None = None,
    timings: list[tuple[str, float, bool]] | None = None,
) -> Statement:
    """Apply the enabled statement-local rules, in order.

    ``options`` is a :class:`~repro.sql.codegen.SqlOptions` (duck-typed:
    any object with the ``opt_*`` flags works, keeping this module free of
    an import cycle with the code generator).

    ``trace`` (a list, if given) receives the flag name of every rule that
    actually *changed* the statement — the fired-rule trace surfaced by
    ``Prepared.explain()`` and ``ExecutionStats``.  ``on_rewrite`` (a
    ``(rule, before, after)`` callable, if given) runs after each such
    rewrite — the per-rule verify hook
    (:func:`repro.check.verifier.rewrite_hook`), LLVM's ``-verify-each``
    for this rewrite engine.

    ``timings`` (a list, if given) receives ``(rule, millis, fired)`` for
    every *attempted* rule — inert attempts included, since the time a
    rule spends deciding not to fire is still compile time; the tracer's
    per-rule ``optimize`` children are built from this.
    """
    import time as _time

    for flag, _description in statement_rule_names:
        if not getattr(options, flag, True):
            continue
        started = _time.perf_counter()
        rewritten = STATEMENT_RULES[flag](statement)
        fired = rewritten != statement
        if timings is not None:
            timings.append(
                (flag, (_time.perf_counter() - started) * 1000.0, fired)
            )
        if not fired:
            continue
        if trace is not None:
            trace.append(flag)
        if on_rewrite is not None:
            on_rewrite(flag, statement, rewritten)
        statement = rewritten
    return statement


# --------------------------------------------------------------------------
# Package-level rule: cross-statement shared scans.


@dataclass(frozen=True)
class SharedScan:
    """One materialised common subplan of a shredded package.

    The executor runs ``create_sql`` once per package execution (before any
    member statement, on the writer connection so every pooled reader sees
    it) and ``drop_sql`` afterwards.  ``name`` is content-addressed, so
    value-identical scans of different plans coexist deterministically.
    """

    name: str
    select: SelectCore
    create_sql: str
    drop_sql: str


def _scan_name(body: str) -> str:
    return "qss_" + hashlib.sha1(body.encode()).hexdigest()[:12]


def extract_shared_scans(
    statements: list[Statement], min_statements: int = 2
) -> tuple[list[Statement], tuple[SharedScan, ...]]:
    """Hoist CTE bodies shared by ≥ ``min_statements`` statements.

    Returns the rewritten statements (shared CTEs removed, their
    references turned into plain table references) plus the scans to
    materialise, in first-appearance order.  Statements are otherwise
    untouched; a body used twice *within* one statement only is left to
    the within-statement dedup rule + SQLite's own CTE materialisation.
    """
    from repro.backend.database import quote_identifier
    from repro.sql.ast import placeholder_names

    body_statements: dict[str, set[int]] = {}
    body_core: dict[str, SelectCore] = {}
    body_order: list[str] = []
    for position, statement in enumerate(statements):
        for _name, core in statement.ctes:
            body = render_select(core)
            if placeholder_names(Statement((), (core,))):
                # A host-parameter placeholder cannot be bound inside a
                # materialise-once CREATE TABLE … AS prelude; leave the CTE
                # in place (it binds per-statement like any other).
                continue
            if body not in body_statements:
                body_statements[body] = set()
                body_core[body] = core
                body_order.append(body)
            body_statements[body].add(position)

    shared_bodies = [
        body
        for body in body_order
        if len(body_statements[body]) >= min_statements
    ]
    if not shared_bodies:
        return list(statements), ()

    scans = tuple(
        SharedScan(
            name=_scan_name(body),
            select=body_core[body],
            create_sql=(
                f"CREATE TABLE {quote_identifier(_scan_name(body))} "
                f"AS {body}"
            ),
            drop_sql=f"DROP TABLE IF EXISTS {quote_identifier(_scan_name(body))}",
        )
        for body in shared_bodies
    )
    shared_names = {body: _scan_name(body) for body in shared_bodies}

    rewritten: list[Statement] = []
    for statement in statements:
        cte_to_scan = {
            name: shared_names[render_select(core)]
            for name, core in statement.ctes
            if render_select(core) in shared_names
        }
        if not cte_to_scan:
            rewritten.append(statement)
            continue
        kept_ctes = tuple(
            (name, core)
            for name, core in statement.ctes
            if name not in cte_to_scan
        )

        def remap(
            core: SelectCore, _map: dict[str, str] = cte_to_scan
        ) -> SelectCore:
            from_items = tuple(
                TableRef(_map[item.cte], item.alias)
                if isinstance(item, CteRef) and item.cte in _map
                else item
                for item in core.from_items
            )
            return SelectCore(core.items, from_items, core.where)

        rewritten.append(
            _map_cores(
                Statement(
                    kept_ctes,
                    statement.selects,
                    statement.columns,
                    statement.order_by,
                ),
                remap,
            )
        )
    return rewritten, scans
