"""Render the SQL AST to SQLite-dialect text.

Identifiers are double-quoted, strings single-quoted with doubling,
booleans stored as 1/0, NULL for None.  The output of a whole
:class:`~repro.sql.ast.Statement` is a single executable statement with one
top-level WITH clause.
"""

from __future__ import annotations

from repro.backend.database import quote_identifier
from repro.errors import SqlGenerationError
from repro.sql.ast import (
    BinOp,
    Col,
    CteRef,
    FromItem,
    Lit,
    NotExists,
    NotOp,
    Placeholder,
    RowNumber,
    SelectCore,
    SqlExpr,
    Statement,
    SubqueryRef,
    TableRef,
)

__all__ = ["render_statement", "render_select", "render_expr"]


def render_statement(statement: Statement, pretty: bool = True) -> str:
    sep = "\n" if pretty else " "
    parts: list[str] = []
    if statement.ctes:
        ctes = (",%s" % sep).join(
            f"{quote_identifier(name)} AS ({render_select(select)})"
            for name, select in statement.ctes
        )
        parts.append(f"WITH {ctes}")
    if not statement.selects:
        raise SqlGenerationError("statement with no SELECT blocks")
    parts.append(
        (sep + "UNION ALL" + sep).join(
            render_select(select) for select in statement.selects
        )
    )
    if statement.order_by:
        columns = ", ".join(
            quote_identifier(name) for name in statement.order_by
        )
        parts.append(f"ORDER BY {columns}")
    return sep.join(parts)


def render_select(select: SelectCore) -> str:
    if select.items:
        items = ", ".join(
            f"{render_expr(item.expr)} AS {quote_identifier(item.alias)}"
            for item in select.items
        )
    else:
        items = "1"
    sql = f"SELECT {items}"
    if select.from_items:
        sources = ", ".join(_render_from(item) for item in select.from_items)
        sql += f" FROM {sources}"
    if select.where is not None:
        sql += f" WHERE {render_expr(select.where)}"
    return sql


def _render_from(item: FromItem) -> str:
    if isinstance(item, TableRef):
        return f"{quote_identifier(item.table)} AS {quote_identifier(item.alias)}"
    if isinstance(item, CteRef):
        return f"{quote_identifier(item.cte)} AS {quote_identifier(item.alias)}"
    if isinstance(item, SubqueryRef):
        return f"({render_select(item.select)}) AS {quote_identifier(item.alias)}"
    raise SqlGenerationError(f"not a FROM item: {item!r}")


def render_expr(expr: SqlExpr) -> str:
    if isinstance(expr, Col):
        return f"{quote_identifier(expr.alias)}.{quote_identifier(expr.name)}"
    if isinstance(expr, Lit):
        return _render_literal(expr.value)
    if isinstance(expr, Placeholder):
        return f":{expr.name}"
    if isinstance(expr, BinOp):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, NotOp):
        return f"(NOT {render_expr(expr.operand)})"
    if isinstance(expr, NotExists):
        return f"(NOT EXISTS ({render_select(expr.select)}))"
    if isinstance(expr, RowNumber):
        if not expr.order_by:
            return "ROW_NUMBER() OVER ()"
        order = ", ".join(render_expr(col) for col in expr.order_by)
        return f"ROW_NUMBER() OVER (ORDER BY {order})"
    raise SqlGenerationError(f"not a SQL expression: {expr!r}")


def _render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SqlGenerationError(f"cannot render literal {value!r}")
