"""Nested value representation and multiset equality.

The paper's denotational semantics (§2.1, Fig. 2) interprets object-level
*bags* as meta-level *lists*: two values are "equivalent as multisets" when
they are equal up to permutation of list elements, recursively.

We mirror this: a nested value is built from

* Python ``int`` / ``bool`` / ``str`` at base type,
* ``dict`` (label → value) at record type,
* ``list`` at bag type.

This module provides canonicalisation (a deterministic total order on nested
values), multiset equality, and rendering helpers used throughout tests,
examples and the stitching code.
"""

from __future__ import annotations

from typing import Any

NestedValue = Any
"""Alias used in signatures: int | bool | str | dict[str, NestedValue] | list."""

#: Discriminator ranks so heterogeneous canonical forms still sort
#: deterministically (bool before int matters: bool is a subclass of int).
_RANK_BOOL = 0
_RANK_INT = 1
_RANK_STR = 2
_RANK_RECORD = 3
_RANK_BAG = 4
_RANK_OTHER = 5


def canonical(value: NestedValue) -> tuple:
    """Return a hashable, totally ordered canonical form of ``value``.

    Bags are sorted recursively, so two values that are equal as multisets
    have identical canonical forms.  Records are sorted by label.  The result
    is a nested tuple and can be used as a dict key or for sorting.
    """
    if isinstance(value, bool):
        return (_RANK_BOOL, value)
    if isinstance(value, int):
        return (_RANK_INT, value)
    if isinstance(value, str):
        return (_RANK_STR, value)
    if isinstance(value, dict):
        fields = tuple(
            (label, canonical(value[label])) for label in sorted(value)
        )
        return (_RANK_RECORD, fields)
    if isinstance(value, (list, tuple)):
        elements = sorted(canonical(element) for element in value)
        return (_RANK_BAG, tuple(elements))
    # Fall back for exotic leaves (e.g. index objects in intermediate stages);
    # they must at least be comparable among themselves via repr.
    return (_RANK_OTHER, repr(value))


def bag_equal(left: NestedValue, right: NestedValue) -> bool:
    """Multiset equality: equal up to permutation of bag elements, recursively."""
    return canonical(left) == canonical(right)


def assert_bag_equal(
    actual: NestedValue, expected: NestedValue, context: str = ""
) -> None:
    """Assert multiset equality with a readable element-level diff.

    The canonical replacement for the ``sorted(...) == sorted(...)`` /
    ``sorted(map(repr, ...))`` comparisons tests used to hand-roll: bags
    compare order-insensitively *at every nesting level*, and on mismatch
    the error lists which elements are missing and which are unexpected
    (with multiplicities), rather than two unreadable sorted dumps.
    """
    if canonical(actual) == canonical(expected):
        return
    prefix = f"{context}: " if context else ""
    if not isinstance(actual, (list, tuple)) or not isinstance(
        expected, (list, tuple)
    ):
        raise AssertionError(
            f"{prefix}values differ as multisets:\n"
            f"  actual  : {render(actual)}\n"
            f"  expected: {render(expected)}"
        )
    counts: dict[tuple, list] = {}
    for element in expected:
        counts.setdefault(canonical(element), [0, element])[0] += 1
    extra: list = []
    for element in actual:
        entry = counts.get(canonical(element))
        if entry is None or entry[0] == 0:
            extra.append(element)
        else:
            entry[0] -= 1
    missing = [element for count, element in counts.values() for _ in range(count)]
    lines = [
        f"{prefix}bags differ as multisets "
        f"({len(actual)} actual vs {len(expected)} expected elements):"
    ]
    for title, elements in (("missing", missing), ("unexpected", extra)):
        for element in elements[:5]:
            lines.append(f"  {title}: {render(element)}")
        if len(elements) > 5:
            lines.append(f"  ... and {len(elements) - 5} more {title}")
    raise AssertionError("\n".join(lines))


def sort_bag(bag: list) -> list:
    """Return ``bag`` sorted by canonical form (a deterministic order)."""
    return sorted(bag, key=canonical)


def render(value: NestedValue, indent: int = 0) -> str:
    """Pretty-print a nested value in the paper's notation.

    Bags render as ``[...]``, records as ``⟨label = value, ...⟩``.  Nested
    bags are placed on their own lines for readability.
    """
    pad = "  " * indent
    if isinstance(value, dict):
        parts = [f"{label} = {render(value[label], indent)}" for label in value]
        return "⟨" + ", ".join(parts) + "⟩"
    if isinstance(value, list):
        if not value:
            return "∅"
        rendered = [render(element, indent + 1) for element in value]
        if sum(len(piece) for piece in rendered) <= 60:
            return "[" + ", ".join(rendered) + "]"
        inner_pad = "  " * (indent + 1)
        body = (",\n" + inner_pad).join(rendered)
        return "[\n" + inner_pad + body + "\n" + pad + "]"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f"“{value}”"
    return str(value)


def dedup_nested(value: NestedValue) -> NestedValue:
    """Collapse a nested *bag* value to its *set*-semantics reading (§9):
    duplicates are eliminated hereditarily (inner bags first, so two
    elements whose inner sets coincide count as duplicates)."""
    if isinstance(value, dict):
        return {label: dedup_nested(field) for label, field in value.items()}
    if isinstance(value, list):
        deduped = []
        seen = set()
        for element in value:
            collapsed = dedup_nested(element)
            key = canonical(collapsed)
            if key not in seen:
                seen.add(key)
                deduped.append(collapsed)
        return deduped
    return value


def bag_size(value: NestedValue) -> int:
    """Total number of bag elements in ``value``, at every nesting level."""
    if isinstance(value, dict):
        return sum(bag_size(field) for field in value.values())
    if isinstance(value, list):
        return len(value) + sum(bag_size(element) for element in value)
    return 0
