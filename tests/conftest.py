"""Shared fixtures: the Fig. 3 database and schema, plus generated instances."""

from __future__ import annotations

import pytest

from repro.backend.database import Database
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    empty_database,
    figure3_database,
)


@pytest.fixture
def schema():
    return ORGANISATION_SCHEMA


@pytest.fixture
def db() -> Database:
    """The exact Fig. 3 sample instance."""
    return figure3_database()


@pytest.fixture
def empty_db() -> Database:
    return empty_database()


@pytest.fixture
def small_random_db() -> Database:
    """A small deterministic random instance (seeded) for integration tests."""
    from repro.data.generator import generate_organisation

    return generate_organisation(
        departments=3, employees_per_dept=4, contacts_per_dept=3, seed=42
    )
