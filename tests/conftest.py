"""Shared fixtures: the Fig. 3 database and schema, plus generated instances.

Also registers the ``repro-ci`` hypothesis profile: the tier-1 CI matrix
runs the property suites (including the sharding differential headline
property) under ``HYPOTHESIS_PROFILE=repro-ci``, which prints the
``@reproduce_failure`` blob on any failing example so a CI failure
replays locally exactly.  (``derandomize`` was measured >20× slower on
these recursive query strategies, so reproducibility comes from the blob
rather than from derandomised generation.)
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro-ci",
    print_blob=True,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
    ],
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])

from repro.backend.database import Database
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    empty_database,
    figure3_database,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: spawns real serve subprocesses (kill/restart fault tests)",
    )


@pytest.fixture
def schema():
    return ORGANISATION_SCHEMA


@pytest.fixture
def db() -> Database:
    """The exact Fig. 3 sample instance."""
    return figure3_database()


@pytest.fixture
def empty_db() -> Database:
    return empty_database()


@pytest.fixture
def small_random_db() -> Database:
    """A small deterministic random instance (seeded) for integration tests."""
    from repro.data.generator import generate_organisation

    return generate_organisation(
        departments=3, employees_per_dept=4, contacts_per_dept=3, seed=42
    )
