"""Deterministic fault injection for the serving path.

Three tools, all dependency-free and deterministic (no random fault
timing — tests decide exactly which fault fires and when):

* :class:`FaultyProxy` — a TCP proxy in front of one server endpoint.
  Clients connect to the proxy; the proxy forwards to the real server and
  injects the configured fault mode:

  - ``"pass"``      forward everything faithfully (the healthy baseline);
  - ``"refuse"``    close every new connection immediately (and every
                    existing one at the moment the mode is set) — the
                    endpoint looks dead;
  - ``"drop"``      forward requests but swallow all response bytes — the
                    client waits until its deadline/timeout fires;
  - ``"delay"``     forward responses only after ``delay`` seconds;
  - ``"truncate"``  forward exactly ``truncate_bytes`` of the next
                    response, then cut the connection mid-frame.

  Every injected fault is appended as a JSON line to the file named by
  ``$REPRO_FAULT_LOG`` (when set) — CI uploads that log as an artifact on
  failure, so a red fault-injection run shows exactly which faults fired.

* :class:`ShardProcess` — one ``python -m repro serve --shard i/n``
  subprocess with kill/restart, for failures no in-process harness can
  fake (the whole server process dies mid-connection).  Since PR 7 this
  is the production class from :mod:`repro.shard.supervisor` (re-exported
  here so existing tests keep importing it from the harness).

* :func:`register_slow` — a registry entry that sleeps before answering,
  for deadline/admission/drain tests that need a predictably slow query
  without depending on data scale.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time

from repro.data.queries import NESTED_QUERIES
from repro.service.registry import QueryRegistry, RegisteredQuery
from repro.shard.supervisor import ShardProcess, free_port

__all__ = ["FaultyProxy", "ShardProcess", "register_slow", "free_port"]

_CHUNK = 65536


class FaultyProxy:
    """A fault-injecting TCP proxy in front of one (host, port) endpoint."""

    MODES = ("pass", "refuse", "drop", "delay", "truncate")

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        mode: str = "pass",
        delay: float = 0.2,
        truncate_bytes: int = 6,
        label: str = "",
    ) -> None:
        self.upstream = (upstream_host, upstream_port)
        self.label = label or f"{upstream_host}:{upstream_port}"
        self._mode = mode
        self.delay = delay
        #: 4 length-prefix bytes + 2 body bytes: enough to start a frame,
        #: never enough to finish one — the canonical mid-frame cut.
        self.truncate_bytes = truncate_bytes
        self._lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._closing = False
        self.faults_injected = 0
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"proxy-{self.label}", daemon=True
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------ mode

    @property
    def mode(self) -> str:
        with self._lock:
            return self._mode

    def set_mode(self, mode: str) -> None:
        """Switch the fault mode; ``refuse`` also cuts live connections."""
        if mode not in self.MODES:
            raise ValueError(f"unknown proxy mode {mode!r}; one of {self.MODES}")
        with self._lock:
            self._mode = mode
            live = list(self._conns) if mode == "refuse" else []
        self._log("set_mode", mode=mode, cut_connections=len(live))
        for sock in live:
            _shutdown(sock)

    def _log(self, event: str, **fields: object) -> None:
        path = os.environ.get("REPRO_FAULT_LOG")
        record = {
            "ts": round(time.time(), 3),
            "proxy": self.label,
            "event": event,
            **fields,
        }
        if event == "fault":
            self.faults_injected += 1
        if not path:
            return
        try:
            with open(path, "a", encoding="utf-8") as log:
                log.write(json.dumps(record, sort_keys=True) + "\n")
        except OSError:  # pragma: no cover - the log is best-effort
            pass

    # -------------------------------------------------------------- plumbing

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if self._closing:
                _shutdown(client)
                return
            if self.mode == "refuse":
                self._log("fault", mode="refuse")
                _shutdown(client)
                continue
            try:
                server = socket.create_connection(self.upstream, timeout=5)
            except OSError:
                self._log("fault", mode="upstream-dead")
                _shutdown(client)
                continue
            with self._lock:
                self._conns.update((client, server))
            up = threading.Thread(
                target=self._pump,
                args=(client, server, "request"),
                daemon=True,
            )
            down = threading.Thread(
                target=self._pump,
                args=(server, client, "response"),
                daemon=True,
            )
            self._threads.extend((up, down))
            up.start()
            down.start()

    def _pump(
        self, source: socket.socket, sink: socket.socket, direction: str
    ) -> None:
        sent = 0
        try:
            while True:
                data = source.recv(_CHUNK)
                if not data:
                    break
                if direction == "response":
                    mode = self.mode
                    if mode == "drop":
                        self._log("fault", mode="drop", swallowed=len(data))
                        continue  # swallow; keep reading so the server
                        # never blocks on its send buffer
                    if mode == "delay":
                        self._log("fault", mode="delay", seconds=self.delay)
                        time.sleep(self.delay)
                    elif mode == "truncate":
                        budget = self.truncate_bytes - sent
                        if budget <= 0:
                            self._log("fault", mode="truncate", cut_at=sent)
                            break
                        if len(data) > budget:
                            sink.sendall(data[:budget])
                            sent += budget
                            self._log("fault", mode="truncate", cut_at=sent)
                            break
                sink.sendall(data)
                sent += len(data)
        except OSError:
            pass
        finally:
            _shutdown(source)
            _shutdown(sink)
            with self._lock:
                self._conns.discard(source)
                self._conns.discard(sink)

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            live = list(self._conns)
        for sock in live:
            _shutdown(sock)
        self._accept_thread.join(timeout=5)
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self) -> "FaultyProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _shutdown(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


# --------------------------------------------------------------------------
# Predictably slow queries (deadline / admission / drain tests).


class _SlowQuery(RegisteredQuery):
    """A registry entry that sleeps before delegating to a real query."""

    def __init__(self, name: str, seconds: float, base: str = "Q1") -> None:
        from repro.api.fluent import to_term

        super().__init__(
            name=name,
            term=to_term(NESTED_QUERIES[base]),
            description=f"sleeps {seconds}s, then answers {base}",
        )
        self.seconds = seconds

    def prepared(self, session):  # noqa: ANN001 - mirrors RegisteredQuery
        real = super().prepared(session)
        seconds = self.seconds

        class _SlowPrepared:
            def run(self, **kwargs):
                time.sleep(seconds)
                return real.run(**kwargs)

            def __getattr__(self, attr):  # compiled / explain / …
                return getattr(real, attr)

        return _SlowPrepared()


def register_slow(
    registry: QueryRegistry, name: str, seconds: float, base: str = "Q1"
) -> None:
    """Register ``name`` as ``base`` behind a ``seconds`` sleep."""
    entry = _SlowQuery(name, seconds, base)
    with registry._lock:
        registry._entries[name] = entry
