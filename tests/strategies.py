"""Hypothesis strategies generating random well-typed λNRC queries.

Strategy: first draw a *type plan* (a nested bag/record/base structure),
then draw a query producing exactly that plan, so unions always join
branches of identical type.  Generated queries exercise:

* multi-generator comprehensions over the organisation tables,
* unions (including empty branches and 3-way top-level unions),
  where-conditions with ∧/∨/¬,
* correlated ``empty`` probes (anti-joins),
* nested bags up to depth 3,
* gratuitous β-redexes and bag-typed conditionals, so normalisation always
  has real work to do,
* optionally (``with_params=True`` / :func:`queries_with_bindings`) typed
  host-parameter placeholders, with bindings generated for exactly the
  parameters the drawn term uses — the PR 4 prepared-statement path under
  randomisation.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.data.organisation import ORGANISATION_SCHEMA
from repro.nrc import builders as b
from repro.nrc.ast import App, Empty, If, Lam, Param, Term, Var
from repro.nrc.types import BOOL, INT, STRING, BaseType

_TABLES = {
    "departments": ORGANISATION_SCHEMA.table("departments"),
    "employees": ORGANISATION_SCHEMA.table("employees"),
    "tasks": ORGANISATION_SCHEMA.table("tasks"),
    "contacts": ORGANISATION_SCHEMA.table("contacts"),
}

_LABELS = ["f1", "f2", "f3"]

#: Host-parameter pool: one fixed name per base type, so every occurrence
#: of a name carries one type (the signature rule `collect_param_specs`
#: enforces) while a term may still use several parameters.
_PARAM_POOL = {
    INT: ("p_int", "p_lo"),
    STRING: ("p_str",),
    BOOL: ("p_flag",),
}

#: Values drawn for generated bindings, per base type.
_PARAM_VALUES = {
    INT: st.integers(-3, 3),
    STRING: st.sampled_from(["Sales", "Product", "Cora", "build", "zzz"]),
    BOOL: st.booleans(),
}


class _Plan:
    pass


class _BagPlan(_Plan):
    def __init__(self, element):
        self.element = element


class _RecordPlan(_Plan):
    def __init__(self, fields):
        self.fields = fields  # list[(label, _Plan)]


class _BasePlan(_Plan):
    def __init__(self, base: BaseType):
        self.base = base


@st.composite
def type_plans(draw, depth: int = 2) -> _Plan:
    """A random result-type plan: Bag ⟨…⟩ with nesting up to ``depth``."""
    return _BagPlan(draw(_record_plan(depth)))


@st.composite
def _record_plan(draw, depth: int) -> _Plan:
    n_fields = draw(st.integers(1, 3))
    fields = []
    for i in range(n_fields):
        if depth > 0 and draw(st.booleans()) and i == n_fields - 1:
            fields.append((_LABELS[i], _BagPlan(draw(_leafy_plan(depth - 1)))))
        else:
            fields.append(
                (_LABELS[i], _BasePlan(draw(st.sampled_from([INT, STRING, BOOL]))))
            )
    return _RecordPlan(fields)


@st.composite
def _leafy_plan(draw, depth: int) -> _Plan:
    if depth > 0 and draw(st.booleans()):
        return draw(_record_plan(depth))
    return _BasePlan(draw(st.sampled_from([INT, STRING])))


Env = list[tuple[str, str]]  # (variable, table name)


@st.composite
def _base_term(
    draw,
    env: Env,
    want: BaseType,
    allow_empty: bool = True,
    params: bool = False,
) -> Term:
    """A base-typed term over the generator environment."""
    candidates = [
        (var, column, ctype)
        for var, table in env
        for column, ctype in _TABLES[table].columns
        if ctype == want
    ]
    choices = ["const"]
    if candidates:
        choices += ["field", "field", "field"]
    if params and want in _PARAM_POOL:
        choices.append("param")
    if want == BOOL:
        choices += ["cmp", "logic"]
        if allow_empty and env:
            choices.append("empty")
    picked = draw(st.sampled_from(choices))

    if picked == "field":
        var, column, _ = draw(st.sampled_from(candidates))
        return Var(var)[column]
    if picked == "param":
        return Param(draw(st.sampled_from(_PARAM_POOL[want])), want)
    if picked == "cmp":
        operand = draw(st.sampled_from([INT, STRING]))
        left = draw(_base_term(env, operand, allow_empty=False, params=params))
        right = draw(_base_term(env, operand, allow_empty=False, params=params))
        op = draw(st.sampled_from([b.eq, b.ne, b.lt, b.le, b.gt, b.ge]))
        return op(left, right)
    if picked == "logic":
        op = draw(st.sampled_from(["and", "or", "not"]))
        left = draw(_base_term(env, BOOL, allow_empty=False, params=params))
        if op == "not":
            return b.not_(left)
        right = draw(_base_term(env, BOOL, allow_empty=False, params=params))
        return b.and_(left, right) if op == "and" else b.or_(left, right)
    if picked == "empty":
        # A correlated anti-join probe.
        probe = draw(_comprehension(env, _BasePlan(INT), depth=0, params=params))
        return b.is_empty(probe)
    # Constants.
    if want == INT:
        return b.const(draw(st.integers(-3, 3)))
    if want == BOOL:
        return b.const(draw(st.booleans()))
    return b.const(
        draw(st.sampled_from(["Sales", "Product", "Cora", "build", "zzz"]))
    )


_FRESH = {"n": 0}


def _fresh_var() -> str:
    _FRESH["n"] += 1
    return f"v{_FRESH['n']}"


@st.composite
def _term_for(draw, plan: _Plan, env: Env, depth: int, params: bool = False) -> Term:
    if isinstance(plan, _BasePlan):
        return draw(_base_term(env, plan.base, params=params))
    if isinstance(plan, _RecordPlan):
        from repro.nrc.ast import Record

        return Record(
            tuple(
                (label, draw(_term_for(sub, env, depth, params=params)))
                for label, sub in plan.fields
            )
        )
    assert isinstance(plan, _BagPlan)
    # Mostly 1–2 branches, occasionally a 3-way union.
    n_branches = draw(st.sampled_from([1, 1, 2, 2, 2, 3]))
    branches = [
        draw(_comprehension(env, plan.element, depth, params=params))
        for _ in range(n_branches)
    ]
    if draw(st.integers(0, 9)) == 0:
        branches.append(Empty())
    query = b.union(*branches)
    if draw(st.integers(0, 4)) == 0 and env:
        # A bag-typed conditional: normalisation hoists it to a where.
        condition = draw(_base_term(env, BOOL, allow_empty=False, params=params))
        query = If(condition, query, Empty())
    return query


@st.composite
def _comprehension(
    draw, env: Env, element_plan: _Plan, depth: int, params: bool = False
) -> Term:
    n_generators = draw(st.integers(1, 2))
    inner_env = list(env)
    new_vars = []
    for _ in range(n_generators):
        table = draw(st.sampled_from(sorted(_TABLES)))
        var = _fresh_var()
        inner_env.append((var, table))
        new_vars.append((var, table))
    condition = draw(_base_term(inner_env, BOOL, params=params))
    body = draw(_term_for(element_plan, inner_env, depth - 1, params=params))
    result: Term = b.where(condition, b.ret(body))
    if draw(st.integers(0, 4)) == 0:
        # A β-redex for the normaliser: (λx. where … return x-body) ⟨⟩.
        wrapper = _fresh_var()
        result = App(Lam(wrapper, result), b.record())
    for var, table in reversed(new_vars):
        result = b.for_(var, b.table(table), result)
    return result


@st.composite
def queries_with_nesting(
    draw, max_depth: int = 2, with_params: bool = False
) -> Term:
    """A random closed, well-typed, flat–nested λNRC query."""
    plan = draw(type_plans(max_depth))
    return draw(_term_for(plan, [], max_depth, params=with_params))


@st.composite
def queries_with_bindings(draw, max_depth: int = 2) -> tuple[Term, dict]:
    """A random query that may use host parameters, plus bindings for
    exactly the parameters it uses (``run(params=bindings)`` is valid —
    no missing names, no unknown names)."""
    from repro.pipeline.shredder import collect_param_specs

    query = draw(queries_with_nesting(max_depth, with_params=True))
    bindings = {
        name: draw(_PARAM_VALUES[declared])
        for name, declared in collect_param_specs(query)
    }
    return query, bindings
