"""Theorem-level tests via the annotated semantics (App. D)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.normalise import normalise
from repro.nrc.semantics import evaluate
from repro.nrc.typecheck import infer
from repro.shred.indexes import canonical_index_fn, index_fn_for
from repro.shred.packages import package_from
from repro.shred.paths import paths
from repro.shred.semantics import run_shredded_annotated
from repro.shred.stitch import stitch
from repro.shred.translate import shred_query
from repro.values import assert_bag_equal
from repro.shred.value_shred import (
    annotated_eval,
    erase_annotated,
    indexes_at_path,
    is_well_indexed,
    shred_value,
)

ALL = {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}


class TestTheorem19:
    """erase(A⟦L⟧) = N⟦erase(L)⟧ — including list order."""

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_erasure_commutes(self, name, schema, db):
        query = ALL[name]
        nf = normalise(query, schema)
        annotated = annotated_eval(nf, db, schema)
        from repro.normalise.normal_form import nf_to_term

        assert erase_annotated(annotated) == evaluate(nf_to_term(nf), db), name


class TestTheorem20:
    """H⟦L⟧ = shred_{A⟦L⟧}(A): running shredded queries equals shredding
    the annotated nested result, per path, including ghost annotations.

    Equality is multiset equality (§2.1): query shredding enumerates union
    branches branch-major while value shredding walks the nested value
    element-major; the rows (with all their indexes) coincide exactly."""

    @pytest.mark.parametrize("name", ["Q1", "Q3", "Q4", "Q6"])
    def test_query_vs_value_shredding(self, name, schema, db):
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        result_type = infer(query, schema)
        annotated = annotated_eval(nf, db, schema)
        for path in paths(result_type):
            via_queries = run_shredded_annotated(
                shred_query(nf, path), db, canonical_index_fn
            )
            via_values = shred_value(annotated, path, canonical_index_fn)
            assert_bag_equal(via_queries, via_values, f"{name} @ {path}")

    @pytest.mark.parametrize("name", ["Q4"])
    def test_single_branch_lists_identical(self, name, schema, db):
        """Without unions the two enumeration orders coincide exactly."""
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        result_type = infer(query, schema)
        annotated = annotated_eval(nf, db, schema)
        for path in paths(result_type):
            via_queries = run_shredded_annotated(
                shred_query(nf, path), db, canonical_index_fn
            )
            via_values = shred_value(annotated, path, canonical_index_fn)
            assert via_queries == via_values, f"{name} @ {path}"


class TestLemma21:
    """A⟦L⟧ is well-indexed at A (for every valid indexing scheme)."""

    @pytest.mark.parametrize("scheme", ["canonical", "natural", "flat"])
    @pytest.mark.parametrize("name", ["Q1", "Q4", "Q6"])
    def test_well_indexed(self, name, scheme, schema, db):
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        result_type = infer(query, schema)
        index = index_fn_for(scheme, nf, db, schema)
        annotated = annotated_eval(nf, db, schema, index)
        assert is_well_indexed(annotated, result_type)

    def test_indexes_at_path_shapes(self, schema, db):
        nf = normalise(queries.Q6, schema)
        result_type = infer(queries.Q6, schema)
        annotated = annotated_eval(nf, db, schema)
        top, people, tasks = paths(result_type)
        assert len(indexes_at_path(annotated, top)) == 4
        assert len(indexes_at_path(annotated, people)) == 5
        assert len(indexes_at_path(annotated, tasks)) == 6


class TestTheorem22:
    """stitch(shred_s(A)) = s for well-indexed s — value-level round trip."""

    @pytest.mark.parametrize("name", ["Q1", "Q4", "Q5", "Q6"])
    def test_stitch_left_inverse_of_value_shredding(self, name, schema, db):
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        result_type = infer(query, schema)
        annotated = annotated_eval(nf, db, schema)
        package = package_from(
            result_type,
            lambda path: [
                (outer, value)
                for outer, value, _ in shred_value(annotated, path)
            ],
        )
        stitched = stitch(package, canonical_index_fn)
        assert stitched == erase_annotated(annotated), name
