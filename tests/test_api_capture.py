"""The ``@query`` capture layer: Python comprehensions → λNRC.

The paper queries Q1–Q6 are re-written as captured Python comprehensions
and must produce values identical to the builder-DSL terms on the same
data, end-to-end through `repro.api` only.
"""

from __future__ import annotations

import pytest

from repro.api import CapturedQuery, connect, query
from repro.data import queries as paper
from repro.errors import CaptureError, TypeCheckError
from repro.values import bag_equal

# --------------------------------------------------------------------------
# Captured versions of the paper's Fig. 9 queries.  Free names (departments,
# employees, tasks, contacts) resolve to table references; `org` resolves to
# the captured nested view exactly as Q6 composes over Q1.

SALARY_CAP = 50000  # closure constants are captured as literals


@query
def org():
    """Q1/Qorg: the nested organisation view."""
    return [
        {
            "name": d.name,
            "employees": [
                {
                    "name": e.name,
                    "salary": e.salary,
                    "tasks": [t.task for t in tasks if t.employee == e.name],
                }
                for e in employees
                if d.name == e.dept
            ],
            "contacts": [
                {"name": c.name, "client": c.client}
                for c in contacts
                if d.name == c.dept
            ],
        }
        for d in departments
    ]


@query
def q2():
    """Q2: departments where every employee can do the abstract task."""
    return [
        {"dept": d.name}
        for d in org
        if all(any(t == "abstract" for t in x.tasks) for x in d.employees)
    ]


@query
def q3():
    return [
        {"name": e.name,
         "tasks": [t.task for t in tasks if t.employee == e.name]}
        for e in employees
    ]


@query
def q4():
    return [
        {"dept": d.name,
         "employees": [e.name for e in employees if d.name == e.dept]}
        for d in departments
    ]


@query
def q5():
    return [
        {"a": t.task,
         "b": [
             {"b": e.name, "c": d.name}
             for e in employees
             for d in departments
             if e.name == t.employee and e.dept == d.name
         ]}
        for t in tasks
    ]


@query
def q6():
    """Q6: outliers and clients with their tasks — union via ``+``."""
    return [
        {
            "department": x.name,
            "people": [
                {"name": y.name, "tasks": y.tasks}
                for y in x.employees
                if y.salary > 1000000 or y.salary < 1000
            ]
            + [
                {"name": y.name, "tasks": ["buy"]}
                for y in x.contacts
                if y.client
            ],
        }
        for x in org
    ]


PAPER_PAIRS = [
    ("Q1", org, paper.Q1),
    ("Q2", q2, paper.Q2),
    ("Q3", q3, paper.Q3),
    ("Q4", q4, paper.Q4),
    ("Q5", q5, paper.Q5),
    ("Q6", q6, paper.Q6),
]


@pytest.fixture
def session(db):
    return connect(db)


class TestPaperQueriesCaptured:
    @pytest.mark.parametrize(
        "name,captured,builder", PAPER_PAIRS, ids=[p[0] for p in PAPER_PAIRS]
    )
    def test_captured_matches_builder_dsl(self, session, name, captured, builder):
        got = session.run(captured)
        want = session.run(builder)
        assert bag_equal(got.value, want.value), name

    @pytest.mark.parametrize(
        "name,captured,builder", PAPER_PAIRS, ids=[p[0] for p in PAPER_PAIRS]
    )
    def test_captured_agrees_across_engines(
        self, session, name, captured, builder
    ):
        auto = session.run(captured)
        per_path = session.run(captured, engine="per-path")
        assert bag_equal(auto.value, per_path.value), name


class TestCaptureFeatures:
    def test_closure_constants_become_literals(self, session, db):
        @query
        def high_earners():
            return [{"emp": e.name} for e in employees if e.salary > SALARY_CAP]

        rows = session.run(high_earners).to_dicts()
        expected = [
            {"emp": row["name"]}
            for row in db.rows("employees")
            if row["salary"] > SALARY_CAP
        ]
        assert bag_equal(rows, expected)

    def test_parameterised_capture_composes(self, session, db):
        @query
        def depts_of(view):
            return [{"dept": d.name} for d in view]

        bound = depts_of(org.term())
        rows = session.run(bound).to_dicts()
        assert bag_equal(
            rows, [{"dept": row["name"]} for row in db.rows("departments")]
        )

    def test_parameters_bindable_by_keyword(self, session):
        @query
        def depts_of(view):
            return [{"dept": d.name} for d in view]

        by_kw = session.run(depts_of.term(view=org.term()))
        positional = session.run(depts_of(org.term()))
        assert bag_equal(by_kw.value, positional.value)

    def test_unbound_parameter_raises(self):
        @query
        def depts_of(view):
            return [{"dept": d.name} for d in view]

        with pytest.raises(CaptureError, match="view"):
            depts_of.term()

    def test_meta_helpers_run_at_capture_time(self, session, db):
        @query
        def with_tasks():
            return [
                {"name": e.name, "tasks": paper.tasks_of_emp(e)}
                for e in employees
            ]

        got = session.run(with_tasks)
        want = session.run(paper.Q3)
        assert bag_equal(got.value, want.value)

    def test_subscript_labels(self, session, db):
        @query
        def names():
            return [{"n": e["name"]} for e in employees]

        assert bag_equal(
            session.run(names).value,
            [{"n": row["name"]} for row in db.rows("employees")],
        )

    def test_conditional_expression(self, session, db):
        @query
        def banded():
            return [
                {"name": e.name,
                 "band": "high" if e.salary > 50000 else "low"}
                for e in employees
            ]

        rows = session.run(banded).to_dicts()
        expected = [
            {"name": row["name"],
             "band": "high" if row["salary"] > 50000 else "low"}
            for row in db.rows("employees")
        ]
        assert bag_equal(rows, expected)

    def test_literal_bags_and_union(self, session):
        @query
        def fixed():
            return [{"xs": [1, 2] + [3]} for d in departments]

        rows = session.run(fixed).to_dicts()
        assert all(sorted(row["xs"]) == [1, 2, 3] for row in rows)

    def test_comparison_chain(self, session, db):
        @query
        def mid():
            return [{"n": e.name} for e in employees if 1000 < e.salary < 100000]

        rows = session.run(mid).to_dicts()
        expected = [
            {"n": row["name"]}
            for row in db.rows("employees")
            if 1000 < row["salary"] < 100000
        ]
        assert bag_equal(rows, expected)

    def test_decorator_with_parentheses(self):
        @query()
        def depts():
            return [{"n": d.name} for d in departments]

        assert isinstance(depts, CapturedQuery)
        assert depts.parameters == ()


class TestCaptureErrors:
    def test_unsupported_syntax_names_the_construct_and_line(self):
        @query
        def bad():
            return {d.name for d in departments}  # set comprehension

        with pytest.raises(CaptureError, match="SetComp"):
            bad.term()

    def test_multi_statement_bodies_rejected(self):
        @query
        def bad():
            xs = [d.name for d in departments]
            return xs

        with pytest.raises(CaptureError, match="single"):
            bad.term()

    def test_duplicate_record_labels_rejected(self):
        @query
        def bad():
            return [{"n": d.name, "n": d.id} for d in departments]  # noqa: F601

        with pytest.raises(CaptureError, match="duplicate"):
            bad.term()

    def test_non_string_record_labels_rejected(self):
        @query
        def bad():
            return [{1: d.name} for d in departments]

        with pytest.raises(CaptureError, match="string literals"):
            bad.term()

    def test_unknown_calls_rejected(self):
        @query
        def bad():
            return [{"n": len(d.name)} for d in departments]

        with pytest.raises(CaptureError, match="len"):
            bad.term()

    def test_any_requires_a_generator(self):
        @query
        def bad():
            return [{"n": d.name} for d in departments if any(True)]

        with pytest.raises(CaptureError, match="generator"):
            bad.term()

    def test_tuple_targets_rejected(self):
        @query
        def bad():
            return [{"n": a} for a, b in departments]

        with pytest.raises(CaptureError, match="simple names"):
            bad.term()

    def test_non_boolean_condition_fails_the_type_checker(self, session):
        @query
        def bad():
            return [{"n": e.name} for e in employees if e.salary]

        with pytest.raises(TypeCheckError):
            session.query(bad).compiled

    def test_interactive_definitions_are_rejected(self):
        namespace: dict = {}
        exec(
            "def interactive():\n"
            "    return [{'n': d.name} for d in departments]\n",
            namespace,
        )
        with pytest.raises(CaptureError, match="source"):
            query(namespace["interactive"]).term()

    def test_non_callable_rejected(self):
        with pytest.raises(CaptureError, match="function"):
            query(42)

    def test_bound_non_term_parameter_rejected(self):
        @query
        def depts_of(view):
            return [{"dept": d.name} for d in view]

        with pytest.raises(CaptureError, match="view"):
            depts_of(object())
