"""Result surface edge cases: ``to_dicts``/``sorted_by`` on deep nesting
and empty results — the wire protocol serialises through them, so their
shapes are a compatibility contract."""

from __future__ import annotations

import json

import pytest

from repro.api import connect
from repro.errors import ShreddingError
from repro.nrc import builders as b
from repro.nrc.schema import Schema, TableSchema
from repro.nrc.types import INT, STRING


@pytest.fixture
def deep_session():
    """Three-level nesting: regions ▷ departments ▷ employees."""
    schema = Schema(
        (
            TableSchema("regions", (("name", STRING),)),
            TableSchema("depts", (("name", STRING), ("region", STRING))),
            TableSchema("staff", (("name", STRING), ("dept", STRING), ("pay", INT))),
        )
    )
    return connect(
        schema=schema,
        tables={
            "regions": [{"name": "east"}, {"name": "west"}],
            "depts": [
                {"name": "sales", "region": "east"},
                {"name": "rnd", "region": "east"},
                {"name": "ops", "region": "west"},
            ],
            "staff": [
                {"name": "ann", "dept": "sales", "pay": 10},
                {"name": "bob", "dept": "sales", "pay": 20},
                {"name": "cat", "dept": "rnd", "pay": 30},
            ],
        },
        cache=False,
    )


def _deep_query(session):
    return (
        session.table("regions", alias="r")
        .select(region="name")
        .nest(
            departments=lambda r: session.table("depts", alias="d")
            .where(lambda d: d.region == r.name)
            .select(department="name")
            .nest(
                members=lambda d: session.table("staff", alias="s")
                .where(lambda s: s.dept == d.name)
                .select("name", "pay")
            )
        )
    )


class TestToDicts:
    def test_three_levels_of_plain_containers(self, deep_session):
        rows = _deep_query(deep_session).run().to_dicts()
        by_region = {row["region"]: row for row in rows}
        assert set(by_region) == {"east", "west"}
        east = sorted(
            by_region["east"]["departments"], key=lambda d: d["department"]
        )
        assert [d["department"] for d in east] == ["rnd", "sales"]
        sales = next(d for d in east if d["department"] == "sales")
        assert sorted(m["name"] for m in sales["members"]) == ["ann", "bob"]
        # Leaves are plain base values; every container is list/dict.
        assert all(
            isinstance(member["pay"], int)
            for row in rows
            for dept in row["departments"]
            for member in dept["members"]
        )

    def test_deep_result_is_json_serialisable(self, deep_session):
        # The wire protocol's exact requirement.
        rows = _deep_query(deep_session).run().to_dicts()
        assert json.loads(json.dumps(rows)) == rows

    def test_empty_top_level(self, deep_session):
        rows = (
            deep_session.table("regions")
            .where(lambda r: r.name == "nowhere")
            .select("name")
            .run()
            .to_dicts()
        )
        assert rows == []

    def test_empty_inner_bags_are_empty_lists(self, deep_session):
        rows = _deep_query(deep_session).run().to_dicts()
        west = next(row for row in rows if row["region"] == "west")
        ops = west["departments"][0]
        assert ops["members"] == []

    def test_empty_literal_query(self, deep_session):
        from repro.nrc.types import bag, record_type

        result = deep_session.run(
            b.empty_bag(record_type(n=bag(record_type(k=INT))))
        )
        assert result.to_dicts() == []
        assert len(result) == 0
        assert list(result) == []


class TestSortedBy:
    def test_sorts_by_single_and_multiple_labels(self, deep_session):
        result = deep_session.table("staff").select("name", "pay").run()
        assert [row["name"] for row in result.sorted_by("name")] == [
            "ann",
            "bob",
            "cat",
        ]
        by_pay_desc = result.sorted_by("pay")
        assert [row["pay"] for row in by_pay_desc] == [10, 20, 30]
        two_keys = (
            deep_session.table("depts").select("region", "name").run()
        )
        assert [
            (row["region"], row["name"])
            for row in two_keys.sorted_by("region", "name")
        ] == [("east", "rnd"), ("east", "sales"), ("west", "ops")]

    def test_sorted_by_on_empty_result(self, deep_session):
        result = (
            deep_session.table("staff")
            .where(lambda s: s.pay > 1000)
            .select("name", "pay")
            .run()
        )
        assert result.sorted_by("name") == []
        assert result.sorted_by("pay", "name") == []

    def test_sorted_by_nested_rows(self, deep_session):
        result = _deep_query(deep_session).run()
        regions = [row["region"] for row in result.sorted_by("region")]
        assert regions == ["east", "west"]

    def test_sorted_by_unknown_label_raises_key_error(self, deep_session):
        result = deep_session.table("staff").select("name").run()
        with pytest.raises(KeyError):
            result.sorted_by("salary")


class TestResultMisc:
    def test_indexing_and_render_survive_empties(self, deep_session):
        result = (
            deep_session.table("regions")
            .where(lambda r: r.name == "nowhere")
            .select("name")
            .run()
        )
        assert result.render() == "∅"
        with pytest.raises(IndexError):
            result[0]

    def test_stats_requires_a_run(self, deep_session):
        prepared = deep_session.table("staff").select("name").prepare()
        with pytest.raises(ShreddingError, match="call .run"):
            prepared.stats()
