"""The `repro.api` façade: Session, fluent Query builder, engines, results.

Paper queries Q1–Q6 run end-to-end through `repro.api` only (no direct
pipeline construction), on every engine including the ``"auto"`` policy;
the fluent builder is checked against the hand-built λNRC terms it mirrors.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.api import PARALLEL_THRESHOLD, Session, connect
from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.data.queries import NESTED_QUERIES, QF4, QF5, Q1
from repro.errors import ShreddingError, UnknownTableError
from repro.nrc import builders as b
from repro.nrc.semantics import evaluate
from repro.values import assert_bag_equal, bag_equal

from .strategies import queries_with_nesting


@pytest.fixture
def session(db) -> Session:
    return connect(db)


class TestPaperQueriesEndToEnd:
    """Q1–Q6 through the façade only, all engines agreeing."""

    @pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
    def test_auto_engine_matches_semantics(self, session, db, name):
        term = NESTED_QUERIES[name]
        result = session.query(term).run()
        assert bag_equal(result.value, evaluate(term, db)), name

    @pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
    @pytest.mark.parametrize("engine", ["per-path", "batched", "parallel"])
    def test_every_engine_matches_auto(self, session, name, engine):
        term = NESTED_QUERIES[name]
        auto = session.query(term).run()
        explicit = session.query(term).run(engine=engine)
        assert bag_equal(auto.value, explicit.value), (name, engine)

    def test_auto_resolution_follows_package_shape(self, session):
        for name, term in NESTED_QUERIES.items():
            prepared = session.query(term)
            expected = (
                "parallel"
                if prepared.query_count >= PARALLEL_THRESHOLD
                else "batched"
            )
            assert prepared.run().engine == expected, name


class TestFluentBuilder:
    def test_nested_select_matches_builder_term(self, session, db):
        fluent = (
            session.table("departments", alias="d")
            .select(department="name")
            .nest(
                staff=lambda d: session.table("employees", alias="e")
                .where(lambda e: e.dept == d.name)
                .select("name", "salary")
            )
        )
        builder = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    department=d["name"],
                    staff=b.for_(
                        "e",
                        b.table("employees"),
                        lambda e: b.where(
                            b.eq(e["dept"], d["name"]),
                            b.ret(
                                b.record(name=e["name"], salary=e["salary"])
                            ),
                        ),
                    ),
                )
            ),
        )
        assert bag_equal(fluent.run().value, evaluate(builder, db))

    def test_where_conjoins_and_operators_build_primitives(self, session, db):
        fluent = (
            session.table("employees")
            .where(lambda e: e.salary > 1000)
            .where(lambda e: (e.dept == "Sales") | (e.dept == "Research"))
            .select("name")
        )
        rows = fluent.run().to_dicts()
        expected = [
            {"name": row["name"]}
            for row in db.rows("employees")
            if row["salary"] > 1000 and row["dept"] in ("Sales", "Research")
        ]
        assert bag_equal(rows, expected)

    def test_scalar_select(self, session, db):
        names = session.table("employees").select(lambda e: e.name).run()
        assert bag_equal(
            names.value, [row["name"] for row in db.rows("employees")]
        )

    def test_computed_field_arithmetic(self, session, db):
        doubled = (
            session.table("employees")
            .select(name="name", double=lambda e: e.salary + e.salary)
            .run()
        )
        expected = [
            {"name": row["name"], "double": 2 * row["salary"]}
            for row in db.rows("employees")
        ]
        assert bag_equal(doubled.value, expected)

    def test_nest_without_select_keeps_all_columns(self, session):
        rows = (
            session.table("departments")
            .nest(
                staff=lambda d: session.table("employees")
                .where(lambda e: e.dept == d.name)
                .select("name")
            )
            .run()
            .to_dicts()
        )
        assert {"id", "name", "staff"} <= set(rows[0])

    def test_union_matches_builder_qf4(self, session, db):
        fluent = (
            session.table("tasks", alias="t")
            .where(lambda t: t.task == "abstract")
            .select(emp="employee")
            .union(
                session.table("employees", alias="e")
                .where(lambda e: e.salary > 50000)
                .select(emp="name")
            )
        )
        assert bag_equal(fluent.run().value, evaluate(QF4, db))

    def test_is_empty_anti_join_matches_builder_qf5(self, session, db):
        fluent = (
            session.table("tasks", alias="t")
            .where(lambda t: t.task == "abstract")
            .select(emp="employee")
        )
        probe = lambda m: (  # noqa: E731 - reads better inline
            session.table("employees", alias="e")
            .where(lambda e: (e.salary > 50000) & (e.name == m.emp))
            .select(lambda e: e.name)
        )
        anti = session.from_(fluent, alias="m").where(
            lambda m: probe(m).is_empty()
        )
        assert bag_equal(anti.run().value, evaluate(QF5, db))

    def test_exists_semi_join(self, session, db):
        with_tasks = (
            session.table("employees", alias="e")
            .where(
                lambda e: session.table("tasks", alias="t")
                .where(lambda t: t.employee == e.name)
                .exists()
            )
            .select("name")
        )
        employees_with_tasks = {
            row["employee"] for row in db.rows("tasks")
        }
        expected = [
            {"name": row["name"]}
            for row in db.rows("employees")
            if row["name"] in employees_with_tasks
        ]
        assert bag_equal(with_tasks.run().value, expected)

    def test_same_table_nesting_never_shadows(self, session, db):
        """An inner query over the same table must correlate with the
        outer row, not silently shadow it."""
        peers = (
            session.table("employees")
            .select(name="name")
            .nest(
                peers=lambda outer: session.table("employees")
                .where(lambda inner: inner.dept == outer.dept)
                .select(lambda inner: inner.name)
            )
        )
        rows = peers.run().to_dicts()
        by_name = {row["name"]: row["peers"] for row in rows}
        dept_of = {r["name"]: r["dept"] for r in db.rows("employees")}
        for name, dept in dept_of.items():
            expected = [n for n, d in dept_of.items() if d == dept]
            assert_bag_equal(by_name[name], expected, name)

    def test_alias_colliding_with_derived_name_stays_fresh(self, session, db):
        """A user alias that equals a derived fresh name (d → d_2) must not
        capture the wrong row in a correlated predicate."""
        q = (
            session.table("departments", alias="d")
            .select(outer_name="name")
            .nest(
                mids=lambda outer: session.table("departments", alias="d")
                .where(lambda mid: mid.name == outer.name)
                .select(mid_name="name")
                .nest(
                    inners=lambda mid: session.table(
                        "departments", alias="d_2"
                    )
                    .where(lambda inner: inner.name == mid.name)
                    .select(lambda inner: inner.name)
                )
            )
        )
        rows = q.run().to_dicts()
        for row in rows:
            assert [m["mid_name"] for m in row["mids"]] == [row["outer_name"]]
            for mid in row["mids"]:
                assert mid["inners"] == [mid["mid_name"]]

    def test_from_over_a_view(self, session, db):
        view = session.query(Q1)
        depts = session.from_(view, alias="d").select(dept="name")
        assert bag_equal(
            depts.run().value,
            [{"dept": row["name"]} for row in db.rows("departments")],
        )

    def test_unknown_table_raises(self, session):
        with pytest.raises(UnknownTableError):
            session.table("nonexistent")

    def test_select_rejects_non_string_positionals(self, session):
        with pytest.raises(ShreddingError, match="column names"):
            session.table("employees").select("name", 42)

    def test_nest_into_scalar_projection_rejected(self, session):
        scalar = session.table("employees").select(lambda e: e.name)
        with pytest.raises(ShreddingError, match="scalar"):
            scalar.nest(tasks=lambda e: session.table("tasks"))

    def test_expr_refuses_python_truthiness(self, session):
        with pytest.raises(ShreddingError, match="truth value"):
            session.table("employees").where(
                lambda e: e.salary > 100 and e.salary < 200
            ).run()


class TestEngineValidation:
    def test_session_rejects_unknown_engine(self, db):
        with pytest.raises(ShreddingError, match="known engines"):
            connect(db, engine="warp")

    def test_run_rejects_unknown_engine(self, session):
        with pytest.raises(ShreddingError, match="known engines"):
            session.query(Q1).run(engine="bogus")

    def test_compiled_query_rejects_unknown_engine(self, session, db):
        compiled = session.compile(Q1)
        with pytest.raises(ShreddingError) as excinfo:
            compiled.run(db, engine="hyperdrive")
        message = str(excinfo.value)
        assert "per-path" in message
        assert "batched" in message
        assert "parallel" in message

    def test_auto_never_reaches_the_pipeline(self, session, db):
        compiled = session.compile(Q1)
        with pytest.raises(ShreddingError, match="known engines"):
            compiled.run(db, engine="auto")


class TestSessionLifecycle:
    def test_connect_from_schema_and_tables(self):
        session = connect(
            schema=ORGANISATION_SCHEMA,
            tables={
                "departments": [{"id": 1, "name": "Ops"}],
                "employees": [],
                "tasks": [],
                "contacts": [],
            },
        )
        rows = session.table("departments").select("name").run().to_dicts()
        assert rows == [{"name": "Ops"}]

    def test_connect_needs_database_or_schema(self):
        with pytest.raises(ShreddingError, match="Database or a Schema"):
            connect()

    def test_insert_is_visible_to_later_runs(self, session):
        before = len(session.table("departments").run())
        session.insert("departments", [{"id": 99, "name": "Skunkworks"}])
        after = session.table("departments").run()
        assert len(after) == before + 1
        assert {"id": 99, "name": "Skunkworks"} in after.to_dicts()

    def test_with_options_natural_scheme_agrees(self, session):
        flat = session.query(Q1).run()
        natural = session.with_options(scheme="natural").query(Q1).run()
        assert bag_equal(flat.value, natural.value)

    def test_plan_cache_hits_accumulate_in_session_stats(self, db):
        from repro.pipeline.plan_cache import PlanCache

        session = connect(db, cache=PlanCache())
        session.query(Q1).run()
        assert session.stats.cache_misses == 1
        session.query(Q1).run()
        assert session.stats.cache_hits == 1
        assert session.stats.queries > 0

    def test_shred_run_shim_populates_a_supplied_cache(self, db):
        from repro.pipeline.plan_cache import PlanCache
        from repro.pipeline.shredder import shred_run

        cache = PlanCache()  # empty instance is falsy (defines __len__)
        first = shred_run(Q1, db, cache=cache)
        assert len(cache) == 1
        second = shred_run(Q1, db, cache=cache)
        assert bag_equal(first, second)
        assert cache.stats()["hits"] >= 1

    def test_prepare_rebinds_a_foreign_prepared_query(self, db):
        session_a = connect(db)
        other_db = figure3_database()
        other_db.insert("departments", [{"id": 77, "name": "Foreign"}])
        session_b = connect(other_db)
        prepared_b = session_b.query(
            b.for_(
                "d",
                b.table("departments"),
                lambda d: b.ret(b.record(n=d["name"], xs=b.bag_of(d["id"]))),
            )
        )
        rebound = session_a.query(prepared_b)
        assert rebound is not prepared_b
        names = {row["n"] for row in rebound.run()}
        assert "Foreign" not in names  # ran on session_a's database
        assert "Foreign" in {row["n"] for row in prepared_b.run()}
        # Same-session prepares stay identical (compiled plan reused).
        assert session_b.query(prepared_b) is prepared_b

    def test_context_manager_closes_connections(self, db):
        with connect(db) as session:
            session.query(Q1).run()
        assert db._connection is None

    def test_list_collection_requires_ordered_options(self, session):
        with pytest.raises(ShreddingError, match="ordered"):
            session.query(Q1).run(collection="list")

    def test_set_collection_dedups(self, session):
        term = b.union(
            b.for_(
                "d",
                b.table("departments"),
                lambda d: b.ret(b.record(n=d["name"], xs=b.bag_of(b.const(1)))),
            ),
            b.for_(
                "d",
                b.table("departments"),
                lambda d: b.ret(b.record(n=d["name"], xs=b.bag_of(b.const(1)))),
            ),
        )
        bag = session.query(term).run()
        dedup = session.query(term).run(collection="set")
        assert len(bag) == 2 * len(dedup)


class TestResultsSurface:
    def test_result_iterates_and_indexes(self, session):
        result = session.query(Q1).run()
        assert len(result) == len(result.to_dicts())
        assert list(result)[0] == result[0]
        assert "⟨" in result.render()

    def test_sorted_by(self, session):
        result = session.query(Q1).run()
        names = [row["name"] for row in result.sorted_by("name")]
        assert names == sorted(names)

    def test_sql_and_explain_expose_compilation(self, session):
        prepared = session.query(Q1)
        assert prepared.sql().count("-- query at path") == prepared.query_count
        report = prepared.explain()
        assert "engine" in report
        assert "auto" in report
        assert "nesting degree" in report

    def test_stats_requires_a_run(self, session):
        prepared = session.query(Q1)
        with pytest.raises(ShreddingError, match="run"):
            prepared.stats()
        prepared.run()
        assert prepared.stats().queries == prepared.query_count

    def test_run_merges_into_caller_stats(self, session):
        from repro.backend.executor import ExecutionStats

        carrier = ExecutionStats()
        session.query(Q1).run(stats=carrier)
        assert carrier.queries == 4


# Property: the auto engine agrees with the reference per-path engine on
# random well-typed nested queries (the façade-level face of Theorem 4).
_DB = figure3_database()
_SESSION = connect(_DB)


@given(queries_with_nesting())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_auto_engine_matches_per_path_property(query):
    auto = _SESSION.query(query).run()
    reference = _SESSION.query(query).run(engine="per-path")
    assert bag_equal(auto.value, reference.value)
