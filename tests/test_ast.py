"""Tests for λNRC terms: substitution, free variables, traversal."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError
from repro.nrc import builders as b
from repro.nrc.ast import (
    App,
    Const,
    For,
    Lam,
    Project,
    Record,
    Return,
    Table,
    Union,
    Var,
    free_vars,
    map_subterms,
    substitute,
    subterms,
    term_size,
)


class TestConstruction:
    def test_const_rejects_non_base(self):
        with pytest.raises(TypeCheckError):
            Const([1, 2])

    def test_record_sorted_and_deduped(self):
        r = Record((("b", Const(1)), ("a", Const(2))))
        assert r.labels == ("a", "b")
        with pytest.raises(TypeCheckError):
            Record((("a", Const(1)), ("a", Const(2))))

    def test_getitem_shorthand(self):
        x = Var("x")
        assert x["name"] == Project(x, "name")
        with pytest.raises(TypeError):
            x[0]


class TestFreeVars:
    def test_var(self):
        assert free_vars(Var("x")) == {"x"}

    def test_lam_binds(self):
        assert free_vars(Lam("x", Var("x"))) == frozenset()
        assert free_vars(Lam("x", Var("y"))) == {"y"}

    def test_for_binds_body_only(self):
        term = For("x", Var("x"), Var("x"))
        assert free_vars(term) == {"x"}  # free in the source

    def test_nested(self):
        term = b.for_("x", Table("t"), lambda x: b.ret(b.record(a=x["f"], b=Var("y"))))
        assert free_vars(term) == {"y"}


class TestSubstitution:
    def test_simple(self):
        assert substitute(Var("x"), "x", Const(1)) == Const(1)

    def test_shadowing_lam(self):
        term = Lam("x", Var("x"))
        assert substitute(term, "x", Const(1)) == term

    def test_shadowing_for(self):
        term = For("x", Var("x"), Var("x"))
        out = substitute(term, "x", Const(1))
        # Source occurrence is free, body occurrence is bound.
        assert out == For("x", Const(1), Var("x"))

    def test_capture_avoidance_lam(self):
        # (λy. x) [x := y]  must NOT capture the free y.
        term = Lam("y", Var("x"))
        out = substitute(term, "x", Var("y"))
        assert isinstance(out, Lam)
        assert out.param != "y"
        assert out.body == Var("y")

    def test_capture_avoidance_for(self):
        term = For("y", Table("t"), Return(Var("x")))
        out = substitute(term, "x", Var("y"))
        assert isinstance(out, For)
        assert out.var != "y"
        assert out.body == Return(Var("y"))

    def test_no_free_occurrence_is_identity(self):
        term = b.ret(b.record(a=Const(1)))
        assert substitute(term, "zzz", Const(5)) is term


class TestTraversal:
    def test_subterms_preorder(self):
        term = Union(Return(Const(1)), Return(Const(2)))
        all_terms = list(subterms(term))
        assert all_terms[0] is term
        assert Const(1) in all_terms and Const(2) in all_terms

    def test_term_size(self):
        term = Union(Return(Const(1)), Return(Const(2)))
        assert term_size(term) == 5

    def test_map_subterms_identity(self):
        term = b.for_("x", Table("t"), lambda x: b.ret(x))
        assert map_subterms(term, lambda t: t) == term

    def test_map_subterms_replaces(self):
        term = Union(Const(1), Const(2))
        out = map_subterms(term, lambda t: Const(0))
        assert out == Union(Const(0), Const(0))


class TestBuilders:
    def test_where_sugar(self):
        w = b.where(b.TRUE, b.ret(Const(1)))
        assert w.cond == Const(True)
        assert w.orelse == b.empty_bag()

    def test_bag_of(self):
        assert b.bag_of() == b.empty_bag()
        three = b.bag_of(Const(1), Const(2), Const(3))
        assert term_size(three) > 3

    def test_and_or_identities(self):
        assert b.and_() == b.TRUE
        assert b.or_() == b.FALSE
        assert b.and_(Var("p")) == Var("p")

    def test_for_with_callable_body(self):
        term = b.for_("x", Table("t"), lambda x: b.ret(x))
        assert term == For("x", Table("t"), Return(Var("x")))

    def test_tuple_builder(self):
        t = b.tuple_(Const(1), Const(2))
        assert t.labels == ("#1", "#2")

    def test_app_left_nested(self):
        out = b.app(Var("f"), Var("x"), Var("y"))
        assert out == App(App(Var("f"), Var("x")), Var("y"))
