"""Tests for the Database substrate (in-memory canonical order + SQLite)."""

from __future__ import annotations

import pytest

from repro.backend.database import Database, quote_identifier
from repro.errors import BackendError, UnknownTableError
from repro.nrc.schema import Schema, TableSchema
from repro.nrc.types import BOOL, INT, STRING


@pytest.fixture
def tiny_schema():
    return Schema(
        (
            TableSchema("t", (("id", INT), ("s", STRING), ("f", BOOL)), key=("id",)),
            TableSchema("u", (("x", INT),)),
        )
    )


class TestSchema:
    def test_signature(self, tiny_schema):
        sig = tiny_schema.signature("t")
        assert str(sig) == "Bag ⟨f: Bool, id: Int, s: String⟩"

    def test_unknown_table(self, tiny_schema):
        with pytest.raises(UnknownTableError):
            tiny_schema.table("nope")

    def test_key_columns_default_to_all(self, tiny_schema):
        assert tiny_schema.table("u").key_columns == ("x",)
        assert not tiny_schema.table("u").has_declared_key
        assert tiny_schema.table("t").key_columns == ("id",)

    def test_bad_key_column(self):
        with pytest.raises(BackendError):
            TableSchema("t", (("a", INT),), key=("b",))

    def test_duplicate_columns(self):
        with pytest.raises(BackendError):
            TableSchema("t", (("a", INT), ("a", INT)))

    def test_duplicate_tables(self):
        t = TableSchema("t", (("a", INT),))
        with pytest.raises(BackendError):
            Schema((t, t))


class TestRows:
    def test_insert_validates_columns(self, tiny_schema):
        db = Database(tiny_schema)
        with pytest.raises(BackendError):
            db.insert("t", [{"id": 1}])
        with pytest.raises(BackendError):
            db.insert("t", [{"id": 1, "s": "a", "f": True, "extra": 0}])

    def test_canonical_order_all_columns_lexicographic(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert(
            "t",
            [
                {"id": 2, "s": "b", "f": False},
                {"id": 1, "s": "z", "f": True},
                {"id": 1, "s": "a", "f": True},
            ],
        )
        ordered = db.rows("t")
        # Sorted by column name order: f, id, s.
        assert [(r["f"], r["id"], r["s"]) for r in ordered] == [
            (False, 2, "b"),
            (True, 1, "a"),
            (True, 1, "z"),
        ]

    def test_raw_rows_keep_insertion_order(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 5}, {"x": 1}])
        assert [r["x"] for r in db.raw_rows("u")] == [5, 1]

    def test_duplicates_preserved(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 1}, {"x": 1}])
        assert db.row_count("u") == 2

    def test_rows_are_cached_read_only_views(self, tiny_schema):
        # rows() returns the canonical list itself (documented read-only):
        # repeat calls are O(1) and share one list, no per-call deep copy.
        db = Database(tiny_schema)
        db.insert("u", [{"x": 1}])
        assert db.rows("u") is db.rows("u")
        # raw_rows() returns a fresh list, so reordering it is safe...
        raw = db.raw_rows("u")
        assert raw is not db.raw_rows("u")
        # ...and an insert invalidates the canonical cache.
        db.insert("u", [{"x": 0}])
        assert [r["x"] for r in db.rows("u")] == [0, 1]

    def test_total_rows(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 1}, {"x": 2}])
        db.insert("t", [{"id": 1, "s": "a", "f": False}])
        assert db.total_rows() == 3


class TestSqlite:
    def test_execute_simple(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("t", [{"id": 1, "s": "a", "f": True}])
        rows = db.execute_sql('SELECT id, s, f FROM "t"')
        assert rows == [(1, "a", 1)]  # booleans stored as 0/1

    def test_decode_row(self, tiny_schema):
        db = Database(tiny_schema)
        decoded = db.decode_row("t", (1, "a", 1))
        assert decoded == {"id": 1, "s": "a", "f": True}

    def test_window_function_available(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 30}, {"x": 10}, {"x": 20}])
        rows = db.execute_sql(
            'SELECT x, ROW_NUMBER() OVER (ORDER BY x) FROM "u"'
        )
        assert rows == [(10, 1), (20, 2), (30, 3)]

    def test_cte_with_union_all(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 1}])
        rows = db.execute_sql(
            "WITH q AS (SELECT x FROM u) SELECT x FROM q UNION ALL SELECT x FROM q"
        )
        assert rows == [(1,), (1,)]

    def test_sql_error_wrapped(self, tiny_schema):
        db = Database(tiny_schema)
        with pytest.raises(BackendError):
            db.execute_sql("SELECT nonsense FROM nowhere")

    def test_insert_invalidates_connection(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 1}])
        assert db.execute_sql("SELECT COUNT(*) FROM u") == [(1,)]
        db.insert("u", [{"x": 2}])
        assert db.execute_sql("SELECT COUNT(*) FROM u") == [(2,)]

    def test_insert_updates_live_connection_in_place(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": 1}])
        connection = db.connection()
        db.insert("u", [{"x": 2}])  # incremental: same connection object
        assert db.connection() is connection
        assert db.execute_sql("SELECT COUNT(*) FROM u") == [(2,)]

    def test_execute_sql_chunks_streams_all_rows(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("u", [{"x": i} for i in range(7)])
        chunks = list(
            db.execute_sql_chunks('SELECT x FROM "u" ORDER BY x', batch_size=3)
        )
        assert [len(chunk) for chunk in chunks] == [3, 3, 1]
        assert [x for chunk in chunks for (x,) in chunk] == list(range(7))
        with pytest.raises(BackendError):
            list(db.execute_sql_chunks("SELECT 1", batch_size=0))

    def test_ensure_index_created_once_and_survives_rebuild(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert("t", [{"id": 1, "s": "a", "f": True}])
        assert db.ensure_index("t", ("s",)) is True
        assert db.ensure_index("t", ("s",)) is False  # remembered
        assert db.ensure_index("t", ("nope",)) is False  # unknown column
        assert db.ensure_index("cte", ("s",)) is False  # unknown table
        names = {
            name
            for (name,) in db.execute_sql(
                "SELECT name FROM sqlite_master WHERE type='index'"
            )
        }
        assert any(name.startswith("qsidx_t_") for name in names)
        db._dispose_connection()  # rebuilt connections replay the index
        names = {
            name
            for (name,) in db.execute_sql(
                "SELECT name FROM sqlite_master WHERE type='index'"
            )
        }
        assert any(name.startswith("qsidx_t_") for name in names)

    def test_key_index_enforced(self, tiny_schema):
        db = Database(tiny_schema)
        db.insert(
            "t",
            [
                {"id": 1, "s": "a", "f": True},
                {"id": 1, "s": "b", "f": False},
            ],
        )
        with pytest.raises(BackendError):
            db.execute_sql("SELECT * FROM t")


class TestQuoting:
    def test_quote_identifier(self):
        assert quote_identifier("abc") == '"abc"'
        assert quote_identifier('we"ird') == '"we""ird"'
