"""Tests for CSV / SQLite-file import and export."""

from __future__ import annotations

import pytest

from repro.backend.io import (
    dump_csv_dir,
    from_sqlite_file,
    load_csv_dir,
    to_sqlite_file,
)
from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.errors import BackendError
from repro.values import assert_bag_equal


class TestCsvRoundTrip:
    def test_dump_then_load(self, tmp_path, db):
        dump_csv_dir(db, tmp_path)
        loaded = load_csv_dir(ORGANISATION_SCHEMA, tmp_path)
        for table in ORGANISATION_SCHEMA.table_names:
            assert loaded.raw_rows(table) == db.raw_rows(table)

    def test_booleans_round_trip(self, tmp_path, db):
        dump_csv_dir(db, tmp_path)
        text = (tmp_path / "contacts.csv").read_text()
        assert "true" in text and "false" in text
        loaded = load_csv_dir(ORGANISATION_SCHEMA, tmp_path)
        pat = next(
            r for r in loaded.raw_rows("contacts") if r["name"] == "Pat"
        )
        assert pat["client"] is True

    def test_missing_file_means_empty_table(self, tmp_path, db):
        dump_csv_dir(db, tmp_path)
        (tmp_path / "tasks.csv").unlink()
        loaded = load_csv_dir(ORGANISATION_SCHEMA, tmp_path)
        assert loaded.row_count("tasks") == 0
        assert loaded.row_count("employees") == 7

    def test_header_mismatch_rejected(self, tmp_path):
        (tmp_path / "departments.csv").write_text("id,wrong\n1,x\n")
        with pytest.raises(BackendError):
            load_csv_dir(ORGANISATION_SCHEMA, tmp_path)

    def test_bad_int_rejected(self, tmp_path):
        (tmp_path / "departments.csv").write_text("id,name\nnope,Product\n")
        with pytest.raises(BackendError):
            load_csv_dir(ORGANISATION_SCHEMA, tmp_path)

    def test_bad_bool_rejected(self, tmp_path):
        (tmp_path / "contacts.csv").write_text(
            "id,dept,name,client\n1,Product,Pam,maybe\n"
        )
        with pytest.raises(BackendError):
            load_csv_dir(ORGANISATION_SCHEMA, tmp_path)

    def test_bool_spellings(self, tmp_path):
        (tmp_path / "contacts.csv").write_text(
            "id,dept,name,client\n1,P,A,1\n2,P,B,no\n3,P,C,True\n"
        )
        loaded = load_csv_dir(ORGANISATION_SCHEMA, tmp_path)
        flags = [r["client"] for r in loaded.raw_rows("contacts")]
        assert flags == [True, False, True]


class TestSqliteFileRoundTrip:
    def test_round_trip(self, tmp_path, db):
        path = tmp_path / "org.sqlite3"
        to_sqlite_file(db, path)
        loaded = from_sqlite_file(ORGANISATION_SCHEMA, path)
        for table in ORGANISATION_SCHEMA.table_names:
            assert_bag_equal(
                loaded.raw_rows(table), db.raw_rows(table), table
            )

    def test_queries_work_on_loaded_db(self, tmp_path, db):
        from repro.data.queries import Q6
        from repro.nrc.semantics import evaluate
        from repro.pipeline.shredder import shred_run
        from repro.values import bag_equal

        path = tmp_path / "org.sqlite3"
        to_sqlite_file(db, path)
        loaded = from_sqlite_file(ORGANISATION_SCHEMA, path)
        assert bag_equal(shred_run(Q6, loaded), evaluate(Q6, db))

    def test_missing_file(self, tmp_path):
        with pytest.raises(BackendError):
            from_sqlite_file(ORGANISATION_SCHEMA, tmp_path / "nope.sqlite3")

    def test_missing_table(self, tmp_path):
        import sqlite3

        path = tmp_path / "partial.sqlite3"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE unrelated (x)")
        connection.commit()
        connection.close()
        with pytest.raises(BackendError):
            from_sqlite_file(ORGANISATION_SCHEMA, path)
