"""Tests for the benchmark harness, reporting and figure generators."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    BenchConfig,
    CellResult,
    SYSTEMS,
    default_scales,
    run_system,
    sweep,
    time_run,
)
from repro.bench.reporting import format_speedups, format_tables, series
from repro.data.generator import scaled_database


@pytest.fixture(scope="module")
def tiny_db():
    db = scaled_database(2, seed=3, scale_rows=4)
    db.connection()
    return db


class TestConfig:
    def test_default_scales_powers_of_two(self):
        config = BenchConfig(max_departments=32, min_departments=4)
        assert default_scales(config) == [4, 8, 16, 32]

    def test_single_scale(self):
        config = BenchConfig(max_departments=4, min_departments=4)
        assert default_scales(config) == [4]


class TestTiming:
    def test_time_run_positive(self, tiny_db):
        from repro.data.queries import Q4

        millis = time_run(SYSTEMS["shredding"], Q4, tiny_db, repeats=2)
        assert millis > 0

    @pytest.mark.parametrize(
        "system",
        ["shredding", "loop-lifting", "avalanche", "shredding-natural"],
    )
    def test_all_nested_systems_run(self, system, tiny_db):
        assert run_system(system, "Q4", tiny_db, repeats=1) > 0

    @pytest.mark.parametrize("system", ["default", "default-raw-sql"])
    def test_flat_systems_run(self, system, tiny_db):
        assert run_system(system, "QF1", tiny_db, repeats=1) > 0


class TestSweep:
    def test_sweep_produces_all_cells(self):
        config = BenchConfig(
            max_departments=4,
            min_departments=2,
            employees_per_dept=3,
            repeats=1,
        )
        results = sweep(["Q4"], ["shredding"], config)
        assert len(results) == 2  # two scales × one query × one system
        assert all(isinstance(cell, CellResult) for cell in results)
        assert all(cell.millis is not None for cell in results)

    def test_budget_cutoff(self):
        config = BenchConfig(
            max_departments=4,
            min_departments=2,
            employees_per_dept=3,
            repeats=1,
            cell_budget_ms=0.0,  # everything is instantly over budget
        )
        results = sweep(["Q4"], ["shredding"], config)
        # First scale runs; larger scales are skipped with a note.
        assert results[0].millis is not None
        assert results[1].millis is None
        assert results[1].note == "over budget"


class TestReporting:
    def _results(self):
        return [
            CellResult("Q1", "shredding", 4, 1.0),
            CellResult("Q1", "shredding", 8, 2.0),
            CellResult("Q1", "loop-lifting", 4, 3.0),
            CellResult("Q1", "loop-lifting", 8, 12.0),
            CellResult("Q1", "loop-lifting", 16, None, "over budget"),
        ]

    def test_series_grouping(self):
        grouped = series(self._results())
        assert grouped["Q1"]["shredding"] == [(4, 1.0), (8, 2.0)]

    def test_format_tables(self):
        text = format_tables(self._results(), "test")
        assert "Q1:" in text
        assert "shredding" in text
        assert "—" in text  # the over-budget cell

    def test_format_speedups(self):
        text = format_speedups(self._results(), "loop-lifting", "shredding")
        assert "6.00x" in text  # 12.0 / 2.0 at the largest common scale

    def test_speedups_no_common_scale(self):
        results = [
            CellResult("Q1", "a", 4, 1.0),
            CellResult("Q1", "b", 8, 1.0),
        ]
        assert "no common" in format_speedups(results, "a", "b")


class TestFigureGenerators:
    def test_appendix_a_text(self):
        from repro.bench.figures import figure_appendix_a

        text = figure_appendix_a()
        assert "|T1| = 72" in text
        assert "(paper: 9)" in text

    def test_counts_text(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_MAX_DEPTS", "2")
        from repro.bench.figures import figure_counts

        config = BenchConfig(
            max_departments=2, min_departments=2, employees_per_dept=3
        )
        text = figure_counts(config)
        assert "shredding" in text and "avalanche" in text

    def test_main_entry(self, capsys):
        from repro.bench.figures import main

        assert main(["--figure", "A"]) == 0
        out = capsys.readouterr().out
        assert "Appendix A" in out
