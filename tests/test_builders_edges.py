"""Edge cases of the `nrc.builders` DSL that the façade's capture and
fluent layers lean on: comprehensions over non-table sources, non-boolean
``where`` conditions, and record-label shadowing.

Until now these paths were only exercised incidentally through the paper
queries; the capture layer generates them systematically (literal bags from
list displays, conditions from arbitrary expressions, records from dict
displays), so they get direct coverage here.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.errors import TypeCheckError
from repro.nrc import builders as b
from repro.nrc.ast import Record
from repro.nrc.semantics import evaluate
from repro.nrc.typecheck import infer
from repro.values import bag_equal


class TestForOverNonTableSources:
    def test_for_over_literal_bag(self, db, schema):
        query = b.for_(
            "x",
            b.bag_of(b.const(1), b.const(2), b.const(3)),
            lambda x: b.ret(b.record(n=x, m=b.mul(x, b.const(10)))),
        )
        expected = [{"n": 1, "m": 10}, {"n": 2, "m": 20}, {"n": 3, "m": 30}]
        assert bag_equal(evaluate(query, db), expected)
        assert bag_equal(connect(db).run(query).value, expected)

    def test_for_over_for(self, db):
        inner = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.ret(b.record(name=e["name"], dept=e["dept"])),
        )
        outer = b.for_(
            "r",
            inner,
            lambda r: b.where(
                b.eq(r["dept"], b.const("Sales")),
                b.ret(b.record(who=r["name"])),
            ),
        )
        expected = [
            {"who": row["name"]}
            for row in db.rows("employees")
            if row["dept"] == "Sales"
        ]
        assert bag_equal(connect(db).run(outer).value, expected)

    def test_for_over_union_of_sources(self, db):
        source = b.union(
            b.for_(
                "t",
                b.table("tasks"),
                lambda t: b.ret(b.record(who=t["employee"])),
            ),
            b.for_(
                "e",
                b.table("employees"),
                lambda e: b.ret(b.record(who=e["name"])),
            ),
        )
        query = b.for_("s", source, lambda s: b.ret(s["who"]))
        expected = [row["employee"] for row in db.rows("tasks")] + [
            row["name"] for row in db.rows("employees")
        ]
        assert bag_equal(connect(db).run(query).value, expected)

    def test_for_over_empty_bag_is_empty(self, db):
        from repro.nrc.types import INT, BagType, RecordType

        query = b.for_(
            "x",
            b.empty_bag(RecordType((("n", INT),))),
            lambda x: b.ret(b.record(n=x["n"], xs=b.bag_of(x["n"]))),
        )
        assert connect(db).run(query).value == []
        assert isinstance(infer(query, db.schema), BagType)


class TestNonBooleanWhere:
    def test_integer_condition_is_ill_typed(self, schema):
        query = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(e["salary"], b.ret(b.record(n=e["name"]))),
        )
        with pytest.raises(TypeCheckError):
            infer(query, schema)

    def test_string_condition_is_ill_typed(self, schema):
        query = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(e["name"], b.ret(b.record(n=e["name"]))),
        )
        with pytest.raises(TypeCheckError):
            infer(query, schema)

    def test_pipeline_rejects_non_boolean_condition(self, db):
        query = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(
                b.add(e["salary"], b.const(1)), b.ret(b.record(n=e["name"]))
            ),
        )
        with pytest.raises(TypeCheckError):
            connect(db).query(query).compiled

    def test_boolean_field_condition_is_fine(self, db):
        query = b.for_(
            "c",
            b.table("contacts"),
            lambda c: b.where(c["client"], b.ret(b.record(n=c["name"]))),
        )
        expected = [
            {"n": row["name"]} for row in db.rows("contacts") if row["client"]
        ]
        assert bag_equal(connect(db).run(query).value, expected)


class TestRecordFieldShadowing:
    def test_duplicate_labels_rejected_at_construction(self):
        with pytest.raises(TypeCheckError, match="duplicate"):
            Record((("n", b.const(1)), ("n", b.const(2))))

    def test_builder_kwargs_cannot_shadow(self):
        # Python keyword arguments already forbid duplicates; the record
        # builder therefore always produces distinct labels.
        record = b.record(a=b.const(1), b=b.const(2))
        assert record.labels == ("a", "b")

    def test_fields_are_sorted_but_lookup_is_by_label(self):
        record = b.record(z=b.const(1), a=b.const(2))
        assert record.labels == ("a", "z")
        assert record.field("z") == b.const(1)

    def test_tuple_encoding_uses_positional_labels(self):
        encoded = b.tuple_(b.const(10), b.const(20))
        assert encoded.labels == ("#1", "#2")

    def test_nested_record_fields_shadow_independently(self, db):
        # The same label at different nesting levels is not shadowing.
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    name=d["name"],
                    inner=b.for_(
                        "e",
                        b.table("employees"),
                        lambda e: b.where(
                            b.eq(e["dept"], d["name"]),
                            b.ret(b.record(name=e["name"])),
                        ),
                    ),
                )
            ),
        )
        result = connect(db).run(query)
        for row in result:
            assert set(row) == {"name", "inner"}
            for inner in row["inner"]:
                assert set(inner) == {"name"}


class TestVariadicBuilders:
    def test_zero_argument_conjunction_is_true(self):
        assert b.and_() == b.TRUE
        assert b.or_() == b.FALSE

    def test_zero_argument_union_is_empty(self, db):
        from repro.nrc.ast import Empty
        from repro.nrc.types import INT

        # A bare ∅ needs an element-type annotation to type-check.
        assert b.union() == Empty()
        result = connect(db).run(
            b.for_("d", b.table("departments"), lambda d: b.ret(
                b.record(n=d["name"], xs=b.empty_bag(INT))
            ))
        )
        expected = [
            {"n": row["name"], "xs": []} for row in db.rows("departments")
        ]
        assert bag_equal(result.value, expected)

    def test_union_of_singletons_matches_bag_of(self, db):
        literal = b.bag_of(b.const(1), b.const(2))
        unioned = b.union(b.ret(b.const(1)), b.ret(b.const(2)))
        assert bag_equal(evaluate(literal, db), evaluate(unioned, db))
