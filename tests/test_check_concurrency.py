"""Tests for ``tools/check_concurrency.py`` — the asyncio lint.

Half the value is the negative space: the real serving stack
(``src/repro/service/``, ``src/repro/shard/``) must lint clean, and stay
clean — the CI quick job runs the same tool.  The snippet tests pin down
exactly which patterns each rule catches and which sanctioned forms
(``await``, ``asyncio.to_thread``, ``gather``/``create_task`` arguments,
nested sync ``def``) it must leave alone.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_concurrency import (  # noqa: E402 - path bootstrap above
    DEFAULT_TARGETS,
    lint_paths,
    lint_source,
    main,
)


def _codes(source: str) -> list[str]:
    return [finding.code for finding in lint_source(source)]


class TestBlockingCallsInAsync:
    def test_time_sleep_flagged(self):
        src = "import time\nasync def f():\n    time.sleep(1)\n"
        assert _codes(src) == ["CC001"]

    def test_sqlite_connect_flagged(self):
        src = "import sqlite3\nasync def f():\n    sqlite3.connect('x.db')\n"
        assert _codes(src) == ["CC001"]

    def test_socket_method_flagged(self):
        src = "async def f(sock):\n    return sock.recv(4096)\n"
        assert _codes(src) == ["CC001"]

    def test_sendall_flagged(self):
        src = "async def f(sock, data):\n    sock.sendall(data)\n"
        assert _codes(src) == ["CC001"]

    def test_same_calls_fine_in_sync_def(self):
        src = (
            "import time, sqlite3\n"
            "def f(sock):\n"
            "    time.sleep(1)\n"
            "    sqlite3.connect('x.db')\n"
            "    sock.recv(4096)\n"
        )
        assert _codes(src) == []

    def test_to_thread_argument_sanctioned(self):
        src = (
            "import asyncio, time\n"
            "async def f():\n"
            "    await asyncio.to_thread(time.sleep, 1)\n"
        )
        assert _codes(src) == []

    def test_nested_sync_def_leaves_async_context(self):
        # The nested def runs on whatever thread calls it later (e.g. a
        # worker thread via to_thread) — not the loop.
        src = (
            "import time\n"
            "async def f():\n"
            "    def worker():\n"
            "        time.sleep(1)\n"
            "    return worker\n"
        )
        assert _codes(src) == []

    def test_line_and_message_attribution(self):
        src = "import time\nasync def f():\n    time.sleep(1)\n"
        (finding,) = lint_source(src, "mod.py")
        assert finding.path == "mod.py"
        assert finding.line == 3
        assert "time.sleep" in finding.message
        assert str(finding).startswith("mod.py:3: CC001")


class TestUnawaitedClientCalls:
    def test_bare_request_flagged(self):
        src = "async def f(client):\n    client.request('ping')\n"
        assert _codes(src) == ["CC002"]

    def test_awaited_request_fine(self):
        src = "async def f(client):\n    return await client.request('ping')\n"
        assert _codes(src) == []

    def test_gather_arguments_fine(self):
        src = (
            "import asyncio\n"
            "async def f(a, b):\n"
            "    await asyncio.gather(a.ping(), b.ping())\n"
        )
        assert _codes(src) == []

    def test_create_task_fine(self):
        src = (
            "import asyncio\n"
            "async def f(client):\n"
            "    asyncio.create_task(client.request('x'))\n"
        )
        assert _codes(src) == []


class TestBareExcept:
    def test_bare_except_flagged_even_in_sync_code(self):
        src = "def f():\n    try:\n        pass\n    except:\n        pass\n"
        assert _codes(src) == ["CC003"]

    def test_typed_except_fine(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert _codes(src) == []


class TestRealTree:
    def test_serving_stack_lints_clean(self):
        findings = lint_paths([ROOT / target for target in DEFAULT_TARGETS])
        assert findings == [], [str(finding) for finding in findings]

    def test_main_exit_codes(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("async def f():\n    return 1\n")
        assert main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nasync def f():\n    time.sleep(1)\n")
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "CC001" in out and "1 finding(s)" in out

        assert main([str(tmp_path / "missing.py")]) == 2
