"""Tests for the `python -m repro` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestSql:
    def test_sql_q6(self, capsys):
        assert main(["sql", "Q6"]) == 0
        out = capsys.readouterr().out
        assert out.count("-- query at path") == 3
        assert "ROW_NUMBER" in out

    def test_sql_natural(self, capsys):
        assert main(["sql", "Q6", "--scheme", "natural"]) == 0
        out = capsys.readouterr().out
        assert "ROW_NUMBER" not in out

    def test_sql_options(self, capsys):
        assert main(["sql", "Q6", "--dedup-cte", "--order-by-keys"]) == 0
        assert "SELECT" in capsys.readouterr().out

    def test_unknown_query(self):
        with pytest.raises(SystemExit):
            main(["sql", "Q99"])


class TestRun:
    def test_run_q4(self, capsys):
        assert main(["run", "Q4"]) == 0
        out = capsys.readouterr().out
        assert "Sales" in out and "⟨" in out

    def test_run_explicit_engine_matches_auto(self, capsys):
        assert main(["run", "Q4", "--engine", "per-path"]) == 0
        per_path = capsys.readouterr().out
        assert main(["run", "Q4", "--engine", "auto"]) == 0
        auto = capsys.readouterr().out
        assert per_path == auto

    def test_run_stats_reports_engine_and_counters(self, capsys):
        assert main(["run", "Q6", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine=parallel" in out  # Q6: 3 statements → auto=parallel
        assert "queries=3" in out

    def test_run_explain(self, capsys):
        assert main(["run", "Q6", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "engine" in out and "nesting degree" in out

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["run", "Q4", "--engine", "warp"])

    def test_help_points_at_the_facade(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "repro.api" in capsys.readouterr().out


class TestNormalForm:
    def test_normal_form_q6(self, capsys):
        assert main(["normal-form", "Q6"]) == 0
        out = capsys.readouterr().out
        assert "return^a" in out and "⊎" in out


class TestFigures:
    def test_figures_appendix_a(self, capsys):
        assert main(["figures", "--figure", "A"]) == 0
        assert "72" in capsys.readouterr().out


class TestBenchSmoke:
    def test_bench_smoke_passes(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_METRICS_SNAPSHOT", str(tmp_path / "snapshot.prom")
        )
        assert main(["bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke PASSED" in out
        assert "shredding_cached" in out
        assert "service[metrics]" in out

    def test_bench_without_smoke_flag_exits(self):
        with pytest.raises(SystemExit):
            main(["bench"])

    def test_smoke_fails_on_pipeline_exception(self, capsys, monkeypatch):
        from repro.bench import smoke

        def boom(system, query_name, db, repeats=1):
            raise RuntimeError("pipeline rot")

        monkeypatch.setattr(smoke, "run_system", boom)
        assert smoke.main() == 1
        assert "smoke FAILED" in capsys.readouterr().out
