"""Cluster-lifecycle regressions: no orphans on failed spawn, idempotent
and crash-tolerant shutdown.

Two bugs blocked making process groups the default sharded substrate:

1. **Spawn leak** — ``spawn_group`` started children one by one; a later
   shard failing to spawn/bind raised out of the loop with the earlier
   children alive and unreferenced.  Every ``connect_sharded(processes=
   True)`` with a bad port or a slow boot leaked real OS processes.  Now
   every process object is tracked *before* any subprocess exists, and
   any failure kills and reaps the whole partial group before the
   exception propagates.
2. **Double-stop / stop-after-crash** — teardown paths (context-manager
   exit, ``finally`` blocks, test harnesses) routinely close twice, and
   children killed by fault injection are already dead when the drain
   runs.  ``Supervisor.stop``, ``SupervisedDeployment.close``,
   ``ShardedServiceClient.close``, ``ShardedSession.close`` and
   ``ProcessShardedSession.close`` are all idempotent and skip dead
   children instead of raising or waiting out the drain grace.
"""

from __future__ import annotations

import time

import pytest

from repro.data.organisation import figure3_database, organisation_placement
from repro.service.registry import paper_registry
from repro.shard import connect_sharded
from repro.shard.supervisor import (
    ShardProcess,
    SupervisedDeployment,
    Supervisor,
    spawn_group,
)

SCHEMA = figure3_database().schema


# --------------------------------------------------------------------------
# Satellite 1: a failed spawn must not strand live subprocesses.


class TestSpawnGroupLeak:
    def test_partial_group_is_killed_and_reaped_on_spawn_failure(
        self, monkeypatch
    ):
        spawned: list[ShardProcess] = []
        original = ShardProcess._await_ready

        def failing_ready(self, timeout):
            spawned.append(self)
            if self.shard == "1/2":
                # The last child of the group fails its readiness probe
                # (stolen port, boot hang, bad argv — all land here).
                raise RuntimeError("planted: shard 1/2 never became ready")
            return original(self, timeout)

        monkeypatch.setattr(ShardProcess, "_await_ready", failing_ready)
        with pytest.raises(RuntimeError, match="planted"):
            spawn_group(2, scale=4, rows=2)

        # Every child that was spawned — the healthy earlier ones AND the
        # one that failed — is dead and reaped: no orphan PIDs.
        assert len(spawned) == 3  # fallback + 0/2 + 1/2
        for process in spawned:
            assert process.process is not None, process.label
            assert process.process.poll() is not None, (
                f"{process.label} (pid {process.process.pid}) left running "
                f"after spawn_group raised"
            )

    def test_first_spawn_failure_leaves_nothing(self, monkeypatch):
        spawned: list[ShardProcess] = []

        def fail_immediately(self, timeout):
            spawned.append(self)
            raise RuntimeError("planted: nothing comes up")

        monkeypatch.setattr(ShardProcess, "_await_ready", fail_immediately)
        with pytest.raises(RuntimeError, match="planted"):
            spawn_group(2, scale=4, rows=2)
        assert spawned  # the probe ran at least once
        for process in spawned:
            assert process.process is None or process.process.poll() is not None


# --------------------------------------------------------------------------
# Satellite 2: shutdown is idempotent and tolerant of dead children.


class TestIdempotentShutdown:
    def test_kill_then_close_neither_raises_nor_hangs(self):
        deployment = SupervisedDeployment(
            2,
            placement=organisation_placement(),
            registry=paper_registry(),
            schema=SCHEMA,
            supervise=False,  # no restart racing the planted kill
        )
        victim = deployment.groups[0][0]
        victim.process.kill()
        victim.process.wait(timeout=10)

        started = time.monotonic()
        deployment.close(drain_grace=10.0)
        elapsed = time.monotonic() - started
        # The dead child is skipped, not waited on: closing takes far
        # less than one drain grace, let alone one per child.
        assert elapsed < 8.0, f"close() hung {elapsed:.1f}s on a dead child"
        deployment.close()  # second close: a no-op, not an exception
        deployment.stop()  # and the alias too
        for process in [deployment.fallback] + deployment.groups[0]:
            assert process.poll() is not None

    def test_supervisor_stop_is_idempotent(self):
        supervisor = Supervisor([])
        supervisor.run_in_background()
        supervisor.stop()
        supervisor.stop()  # double-stop: no join of a dead thread, no raise

    def test_process_session_close_survives_crashed_child(self):
        cluster = connect_sharded(
            placement=organisation_placement(),
            shards=2,
            processes=True,
            supervise=False,
        )
        try:
            assert cluster.run("Q1").route  # the cluster works
        finally:
            victim = cluster.deployment.groups[1][0]
            victim.process.kill()
            victim.process.wait(timeout=10)
            cluster.close()
            cluster.close()  # idempotent
        assert cluster.deployment.fallback.poll() is not None

    def test_in_process_session_close_is_idempotent(self):
        session = connect_sharded(
            figure3_database(),
            placement=organisation_placement(),
            shards=2,
        )
        assert session.run(paper_registry().lookup("Q1").term).value
        session.close()
        session.close()  # a second close must be a no-op
