"""Co-partitioned placements: classification, soundness, spec round-trip.

PR 10 teaches :class:`~repro.shard.placement.Placement` alignment groups
(``aligned=[("departments", "employees")]``): tables partitioned by
*join-compatible* keys, declared co-located because
:func:`~repro.shard.placement.shard_for` hashes the routing **value**
only — ``departments.name = "Sales"`` and ``employees.dept = "Sales"``
land on the same shard by construction.  The shardability analysis uses
the declaration two ways:

* **multi-table routed** — a query whose generators over *every* sharded
  table are pinned (transitively, via the union-find over equalities) to
  one common ground value routes to that value's shard, with or without
  an alignment declaration;
* **co-partitioned fanout** — a query distributive over an *anchor*
  sharded table fans out even when it also references other sharded
  tables, provided each such table is aligned with the anchor and every
  generator over it is equality-pinned to an in-scope anchor row's
  routing column.  That is what turns Q5's nested reference (tasks ×
  employees) from a guaranteed fallback into a fan-out.

The differential layer then asserts the semantics: fan-out answers under
both co-partitioned placements equal single-session answers exactly, as
nested multisets, at 2/3/4 shards.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.data.queries import NESTED_QUERIES
from repro.errors import ShardingError
from repro.normalise import normalise
from repro.nrc import ast
from repro.service.registry import paper_registry
from repro.shard import Placement, analyse, connect_sharded, sharded
from repro.values import assert_bag_equal

REGISTRY = paper_registry()

P_DEPT_CO = Placement.of(
    {"departments": sharded(key="name"), "employees": sharded(key="dept")},
    aligned=[("departments", "employees")],
)
P_TASK_CO = Placement.of(
    {"tasks": sharded(key="employee"), "employees": sharded(key="name")},
    aligned=[("tasks", "employees")],
)


def _plan(name: str, placement: Placement):
    term = REGISTRY.lookup(name).term
    return analyse(normalise(term, ORGANISATION_SCHEMA), placement)


# --------------------------------------------------------------------------
# Classification.


class TestClassification:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4", "Q6"])
    def test_dept_alignment_fans_out_the_dept_queries(self, name):
        plan = _plan(name, P_DEPT_CO)
        assert plan.mode == "fanout", (name, plan.reason)

    def test_coalignment_reason_names_the_pinned_tables(self):
        # Q4 references both sharded tables: only the alignment makes it
        # distributive, and the reason says so.
        plan = _plan("Q4", P_DEPT_CO)
        assert plan.mode == "fanout"
        assert "co-partitioned" in plan.reason

    def test_q5_fans_out_under_task_alignment(self):
        # The tentpole: Q5 ranges over tasks and dereferences employees
        # by tasks.employee — a fallback under every pre-PR-10 placement,
        # a fan-out once the two tables are aligned on that key.
        plan = _plan("Q5", P_TASK_CO)
        assert plan.mode == "fanout", plan.reason
        assert "tasks" in plan.reason and "co-partitioned" in plan.reason

    def test_q5_still_falls_back_under_dept_alignment(self):
        # Alignment is per-key: departments⟂employees says nothing about
        # tasks, whose top-level generator blocks every anchor.
        assert _plan("Q5", P_DEPT_CO).mode == "fallback"

    def test_routed_point_lookup_survives_coalignment(self):
        # dept_staff pins departments.name *and* employees.dept to the
        # same ground atom — with both tables sharded it is still a
        # single-shard route (value-only hashing), not a fan-out.
        plan = _plan("dept_staff", P_DEPT_CO)
        assert plan.mode == "routed"
        assert "departments.name" in plan.reason
        assert "employees.dept" in plan.reason

    def test_unaligned_multi_table_still_falls_back(self):
        unaligned = Placement.of(
            {
                "departments": sharded(key="name"),
                "employees": sharded(key="dept"),
            }
        )
        for name in ("Q1", "Q4"):
            plan = _plan(name, unaligned)
            assert plan.mode == "fallback", (name, plan.reason)
            assert "multiple sharded tables" in plan.reason

    def test_unpinned_aligned_generator_falls_back(self):
        # A cross product over two aligned tables has no equality pinning
        # the employees row to the department in scope: the matching rows
        # for one department live on *other* shards, so fanning out would
        # drop them.  The alignment checker must reject it.
        term = ast.For(
            "d",
            ast.Table("departments"),
            ast.For(
                "e",
                ast.Table("employees"),
                ast.Return(
                    ast.Record(
                        (
                            ("dept", ast.Project(ast.Var("d"), "name")),
                            ("emp", ast.Project(ast.Var("e"), "name")),
                        )
                    )
                ),
            ),
        )
        plan = analyse(normalise(term, ORGANISATION_SCHEMA), P_DEPT_CO)
        assert plan.mode == "fallback", plan.reason


# --------------------------------------------------------------------------
# Placement declaration + spec round-trip.


class TestPlacementAlignment:
    def test_alignment_requires_sharded_tables(self):
        with pytest.raises(ShardingError):
            Placement.of(
                {"departments": sharded(key="name")},
                aligned=[("departments", "employees")],  # employees replicated
            )

    def test_alignment_groups_need_two_tables(self):
        with pytest.raises(ShardingError):
            Placement.of(
                {"departments": sharded(key="name")},
                aligned=[("departments",)],
            )

    def test_one_table_cannot_join_two_groups(self):
        with pytest.raises(ShardingError):
            Placement.of(
                {
                    "departments": sharded(key="name"),
                    "employees": sharded(key="dept"),
                    "tasks": sharded(key="employee"),
                },
                aligned=[
                    ("departments", "employees"),
                    ("employees", "tasks"),
                ],
            )

    def test_aligned_with(self):
        assert P_DEPT_CO.is_aligned("departments", "employees")
        assert P_DEPT_CO.is_aligned("employees", "departments")
        assert not P_DEPT_CO.is_aligned("departments", "tasks")
        assert P_DEPT_CO.aligned_with("tasks") == frozenset()

    @pytest.mark.parametrize(
        "placement",
        [P_DEPT_CO, P_TASK_CO, organisation_placement()],
        ids=["dept_co", "task_co", "organisation"],
    )
    def test_spec_round_trips(self, placement):
        assert Placement.from_spec(placement.to_spec()) == placement

    def test_spec_round_trips_replication(self):
        placement = P_DEPT_CO.with_replication(3)
        recovered = Placement.from_spec(placement.to_spec())
        assert recovered == placement
        assert recovered.replication == 3
        assert recovered.is_aligned("departments", "employees")

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "departments",
            "departments=name;aligned=departments",
            "departments=name;aligned=departments+tasks",
            "departments=name;replication=zero",
            "departments=name;nonsense=1",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ShardingError):
            Placement.from_spec(spec)


# --------------------------------------------------------------------------
# Differential: co-partitioned fan-out answers are exact.


class TestCoPartitionedDifferential:
    @pytest.fixture(scope="class")
    def single(self):
        session = connect(figure3_database())
        yield session
        session.close()

    @pytest.mark.parametrize(
        "placement",
        [P_DEPT_CO, P_TASK_CO],
        ids=["dept_co", "task_co"],
    )
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_paper_queries_agree(self, single, placement, shards):
        session = connect_sharded(
            figure3_database(), placement=placement, shards=shards
        )
        try:
            for name in sorted(NESTED_QUERIES):
                expected = single.run(NESTED_QUERIES[name]).value
                result = session.run(NESTED_QUERIES[name])
                assert_bag_equal(
                    result.value,
                    expected,
                    f"{name} @ {shards} shards ({result.route})",
                )
            for params in ({"dept": "Sales"}, {"dept": "Quality"}):
                term = REGISTRY.lookup("dept_staff").term
                expected = single.run(term, params=params).value
                result = session.run(term, params=params)
                assert_bag_equal(result.value, expected, str(params))
            term = REGISTRY.lookup("staff_above").term
            for threshold in (0, 900, 2_000_000):
                params = {"min_salary": threshold}
                expected = single.run(term, params=params).value
                result = session.run(term, params=params)
                assert_bag_equal(result.value, expected, str(params))
        finally:
            session.close()
            session.close()  # close is idempotent (PR 10 lifecycle fix)

    def test_inserts_route_to_aligned_shards(self, single):
        # Rows inserted into both aligned tables with the same routing
        # value land on the same shard, keeping fan-out exact after
        # writes.
        session = connect_sharded(
            figure3_database(), placement=P_DEPT_CO, shards=4
        )
        try:
            assert session.insert(
                "departments", [{"id": 50, "name": "Logistics"}]
            )
            session.insert(
                "employees",
                [{"id": 900, "dept": "Logistics", "name": "lee",
                  "salary": 700}],
            )
            from repro.shard import shard_for

            owner = shard_for("Logistics", 4)
            assert session.db.row_counts("departments")[owner] >= 1
            assert session.db.row_counts("employees")[owner] >= 1
            result = session.run(
                REGISTRY.lookup("dept_staff").term,
                params={"dept": "Logistics"},
            )
            assert result.route == f"routed:{owner}"
            assert [dict(row) for row in result.value] == [
                {"department": "Logistics", "staff": [{"name": "lee"}]}
            ]
        finally:
            session.close()
