"""Tests for query diagnostics (:mod:`repro.check.diagnostics`) and the
``python -m repro lint`` CLI.

The diagnostics layer explains *well-formed but surprising* queries:
declared parameters no SQL statement binds (QS101), the shard plan and its
cause (QS201), advisory-index hints (QS301), the statement count vs. the
paper's shredding bound (QS401).  Lint fails (exit 1) iff any diagnostic is
a warning or an error — and the whole paper registry must lint clean,
which is what the CI ``analyze`` job asserts with this same CLI.
"""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.api import connect
from repro.check.diagnostics import Diagnostic, has_failures
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.nrc import builders as b
from repro.nrc.ast import App, Const, Lam, Param, Project, Var
from repro.nrc.types import BOOL, INT
from repro.service.registry import QueryRegistry, paper_registry
from repro.sql.codegen import SqlOptions

SCHEMA = ORGANISATION_SCHEMA


def _proj(var, label):
    return Project(Var(var), label)


def _dead_param_query():
    """The parameter :flag is declared by the term but β-reduces away
    during normalisation — no SQL statement ever binds it."""
    return b.for_(
        "x",
        b.table("departments"),
        b.where(
            App(Lam("y", Const(True), BOOL), Param("flag", BOOL)),
            b.ret(b.record(name=_proj("x", "name"))),
        ),
    )


def _fallback_query():
    """A self-join over the sharded table: non-distributive, so the
    analysis diverts it whole to the full-copy fallback shard."""
    return b.for_(
        "d1",
        b.table("departments"),
        b.for_(
            "d2",
            b.table("departments"),
            b.where(
                b.eq(_proj("d1", "name"), _proj("d2", "name")),
                b.ret(b.record(name=_proj("d1", "name"))),
            ),
        ),
    )


@pytest.fixture()
def session():
    with connect(figure3_database(), cache=False) as s:
        yield s


class TestDiagnosticValue:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Diagnostic("QS999", "fatal", "x", "nope")

    def test_str_format(self):
        d = Diagnostic("QS101", "warning", "param :flag", "dead parameter")
        assert str(d) == "QS101 warning [param :flag] dead parameter"

    def test_has_failures(self):
        info = Diagnostic("QS401", "info", "package", "fine")
        warn = Diagnostic("QS101", "warning", "param :x", "dead")
        assert not has_failures([info])
        assert has_failures([info, warn])


class TestDeadParameters:
    def test_dead_param_warns_qs101(self, session):
        diags = session.lint(_dead_param_query())
        dead = [d for d in diags if d.code == "QS101"]
        assert len(dead) == 1
        assert dead[0].severity == "warning"
        assert dead[0].span == "param :flag"
        assert "bound by none" in dead[0].message
        assert has_failures(diags)

    def test_live_param_is_clean(self, session):
        query = b.for_(
            "e",
            b.table("employees"),
            b.where(
                b.ge(_proj("e", "salary"), Param("min_salary", INT)),
                b.ret(b.record(name=_proj("e", "name"))),
            ),
        )
        diags = session.lint(query)
        assert not [d for d in diags if d.code in ("QS101", "QS102")]
        assert not has_failures(diags)

    def test_diagnostics_sorted_most_severe_first(self, session):
        diags = session.lint(_dead_param_query())
        severities = [d.severity for d in diags]
        assert severities == sorted(
            severities, key=["error", "warning", "info"].index
        )


class TestShardPlanAttribution:
    def test_fallback_cause_explained(self, session):
        diags = session.lint(
            _fallback_query(), placement=organisation_placement()
        )
        (plan,) = [d for d in diags if d.code == "QS201"]
        assert plan.severity == "info"
        assert "fallback" in plan.span
        assert "cannot be distributed" in plan.message
        assert "non-distributive" in plan.message

    def test_fanout_cause_explained(self, session):
        query = b.for_(
            "d",
            b.table("departments"),
            b.ret(b.record(name=_proj("d", "name"))),
        )
        diags = session.lint(query, placement=organisation_placement())
        (plan,) = [d for d in diags if d.code == "QS201"]
        assert "fanout" in plan.span
        assert "distributive over" in plan.message

    def test_no_placement_no_shard_diagnostic(self, session):
        diags = session.lint(_fallback_query())
        assert not [d for d in diags if d.code == "QS201"]


class TestBoundAndIndexes:
    def test_shredding_bound_reported(self, session):
        from repro.data.queries import NESTED_QUERIES

        diags = session.lint(NESTED_QUERIES["Q6"])
        (bound,) = [d for d in diags if d.code == "QS401"]
        assert "exactly 3 flat statement(s)" in bound.message
        assert "avalanche" in bound.message

    def test_advisory_indexes_reported(self, session):
        from repro.data.queries import NESTED_QUERIES

        diags = session.lint(NESTED_QUERIES["Q1"])
        hints = [d for d in diags if d.code == "QS301"]
        assert hints, "Q1's inner joins should want advisory indexes"
        assert all(d.severity == "info" for d in hints)
        assert any("employees(" in d.message for d in hints)


class TestPaperRegistryLintsClean:
    """The precondition of the CI analyze job: every registered paper query
    compiles without a single warning or error, with the optimizer on and
    the shard placement attributed."""

    @pytest.mark.parametrize("name", paper_registry().names())
    def test_registry_query_clean(self, name):
        registry = paper_registry()
        with connect(
            schema=SCHEMA, options=SqlOptions(optimize=True), cache=False
        ) as session:
            diags = session.lint(
                registry.lookup(name).term,
                placement=organisation_placement(),
            )
        assert not has_failures(diags), [str(d) for d in diags]
        assert [d for d in diags if d.code == "QS201"]
        assert [d for d in diags if d.code == "QS401"]


class TestPreparedSurface:
    def test_prepared_diagnostics_and_session_lint_agree(self, session):
        prepared = session.prepare(_dead_param_query())
        assert [str(d) for d in prepared.diagnostics()] == [
            str(d) for d in session.lint(_dead_param_query())
        ]


class TestLintCli:
    def test_full_registry_lints_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "Q6: ok" in out
        assert "FAIL" not in out

    def test_verbose_prints_info_diagnostics(self, capsys):
        assert main(["lint", "Q1", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "QS201 info" in out
        assert "QS401 info" in out

    def test_quiet_by_default(self, capsys):
        assert main(["lint", "Q1"]) == 0
        out = capsys.readouterr().out
        assert "QS" not in out  # info-level findings hidden without -v

    def test_unknown_query_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "no_such_query"])

    def test_warning_query_fails_lint(self, capsys, monkeypatch):
        """Register a dead-parameter query and the CLI exits 1, printing
        the QS101 finding — the acceptance bar for the lint surface."""
        registry = QueryRegistry()
        registry.register("dead_param", _dead_param_query())
        import repro.service.registry as registry_module

        monkeypatch.setattr(
            registry_module, "paper_registry", lambda: registry
        )
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "dead_param: FAIL" in out
        assert "QS101 warning [param :flag]" in out
