"""Durable stores: WAL mode, snapshot-on-start recovery, and the
idempotency journal (exactly-once application under redelivery).

The contract under test (PR 7): a :class:`Database` opened with
``path=`` commits every insert to the on-disk file *before* advancing
the in-memory interpretation, so a reopened store — the supervisor's
restart path — recovers exactly the acknowledged rows and exactly the
applied idempotency keys, and a redelivered write is a no-op on every
layer (memory rows, canonical order, SQLite materialisation).
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.api import connect
from repro.backend.database import Database
from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.data.queries import NESTED_QUERIES
from repro.errors import BackendError
from repro.values import assert_bag_equal


def _seed_tables() -> dict:
    source = figure3_database()
    return {
        table.name: source.raw_rows(table.name)
        for table in source.schema.tables
    }


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "shard-0.sqlite"


class TestDurableMode:
    def test_fresh_file_is_seeded_in_wal_mode(self, store_path):
        db = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        assert not db.recovered
        assert db.total_rows() == figure3_database().total_rows()
        (mode,) = db.connection().execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        assert store_path.exists()

    def test_reopen_recovers_rows_and_ignores_seed(self, store_path):
        first = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        first.insert("departments", [{"id": 99, "name": "Ops"}])
        expected = first.rows("departments")
        first._dispose_connection()

        reopened = Database(
            ORGANISATION_SCHEMA, _seed_tables(), path=store_path
        )
        assert reopened.recovered
        # The seed was *not* re-applied on top of the surviving rows.
        assert reopened.row_count("departments") == len(expected)
        assert reopened.rows("departments") == expected

    def test_recovered_store_answers_queries_identically(self, store_path):
        durable = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        durable._dispose_connection()
        recovered = Database(ORGANISATION_SCHEMA, path=store_path)
        assert recovered.recovered
        with connect(figure3_database()) as memory_session, connect(
            recovered
        ) as durable_session:
            for name in ("Q1", "Q4", "Q6"):
                assert_bag_equal(
                    durable_session.run(NESTED_QUERIES[name]).value,
                    memory_session.run(NESTED_QUERIES[name]).value,
                    f"{name} on the recovered store",
                )

    def test_readers_are_query_only(self, store_path):
        db = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        (reader,) = db.read_connections(1)
        with pytest.raises(sqlite3.OperationalError):
            reader.execute("DELETE FROM departments")

    def test_failed_insert_leaves_both_layers_untouched(self, store_path):
        db = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        before = db.row_count("departments")
        # Duplicate declared key: the file-first transaction rolls back
        # and the in-memory rows never advance.
        with pytest.raises(BackendError):
            db.insert("departments", [{"id": 1, "name": "Dup"}])
        assert db.row_count("departments") == before
        (count,) = db.connection().execute(
            "SELECT COUNT(*) FROM departments"
        ).fetchone()
        assert count == before


class TestIdempotencyJournal:
    def test_duplicate_key_is_a_noop_in_memory_mode(self):
        db = figure3_database()
        before = db.row_count("departments")
        assert db.insert(
            "departments", [{"id": 80, "name": "Dev"}], idempotency_key="k1"
        )
        assert not db.insert(
            "departments", [{"id": 80, "name": "Dev"}], idempotency_key="k1"
        )
        assert db.row_count("departments") == before + 1

    def test_journal_survives_reopen(self, store_path):
        first = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        assert first.insert(
            "departments", [{"id": 81, "name": "QA"}], idempotency_key="w-1"
        )
        count = first.row_count("departments")
        first._dispose_connection()

        # The redelivery arrives *after* a crash-restart: the journal in
        # the file, not process memory, must dedup it.
        reopened = Database(ORGANISATION_SCHEMA, path=store_path)
        assert reopened.recovered
        assert not reopened.insert(
            "departments", [{"id": 81, "name": "QA"}], idempotency_key="w-1"
        )
        assert reopened.row_count("departments") == count
        assert reopened.insert(
            "departments", [{"id": 82, "name": "Net"}], idempotency_key="w-2"
        )
        assert reopened.row_count("departments") == count + 1

    def test_key_dedups_across_tables_and_sqlite_agrees(self, store_path):
        db = Database(ORGANISATION_SCHEMA, _seed_tables(), path=store_path)
        db.insert("departments", [{"id": 83, "name": "Lab"}], idempotency_key="x")
        assert not db.insert(
            "departments", [{"id": 84, "name": "Lab2"}], idempotency_key="x"
        )
        rows = db.connection().execute(
            "SELECT COUNT(*) FROM departments WHERE id IN (83, 84)"
        ).fetchone()
        assert rows == (1,)
