"""Smoke tests: every example script runs and prints what it promises."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "organisation_walkthrough.py",
        "higher_order_queries.py",
        "query_avalanche.py",
        "indexing_schemes.py",
        "social_feed.py",
    } <= names


def test_examples_use_the_facade():
    """Every example goes through the `repro.api` Session façade: no direct
    ShreddingPipeline construction outside `repro.api` and its shims."""
    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        assert "ShreddingPipeline" not in source, (
            f"{path.name} constructs the pipeline directly; "
            f"use repro.api.connect()"
        )
        assert "repro.api" in source, (
            f"{path.name} does not import the repro.api façade"
        )


def test_pipeline_construction_is_contained_in_the_engine():
    """`ShreddingPipeline(...)` may only be constructed inside `repro.api`,
    its pipeline home, and the engine-room modules (baselines/bench); the
    application surface goes through `Session`."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    allowed = {
        src / "api" / "session.py",          # the façade itself
        src / "pipeline" / "shredder.py",    # the class definition + shims
        src / "pipeline" / "plan_cache.py",  # docstring mention
        src / "bench" / "harness.py",        # benchmark systems
        src / "bench" / "figures.py",
        src / "bench" / "smoke.py",
        src / "__main__.py",                 # sql --explain engine report
    }
    offenders = [
        path
        for path in src.rglob("*.py")
        if path not in allowed and "ShreddingPipeline(" in path.read_text()
    ]
    assert not offenders, (
        f"direct ShreddingPipeline construction outside the engine room: "
        f"{[str(p) for p in offenders]}"
    )


def test_social_feed():
    out = _run("social_feed.py")
    assert "4 flat queries" in out
    assert "Edinburgh" in out and "On shredding" in out


def test_quickstart():
    out = _run("quickstart.py")
    assert "shreds into 2 flat queries" in out
    assert "Sales" in out and "Erik" in out


def test_organisation_walkthrough():
    out = _run("organisation_walkthrough.py")
    assert "Qcomp" in out
    assert "q1, q2, q3" in out
    # The §3 natural-index results appear.
    assert "b·⟨1, 2⟩" in out or "b·⟨1, 2⟩" in out.replace(" ", " ")
    assert "department = “Sales”" in out


def test_higher_order_queries():
    out = _run("higher_order_queries.py")
    assert "after symbolic evaluation" in out
    assert ": 0" in out  # all λ/apps eliminated
    assert "dept" in out


def test_query_avalanche():
    out = _run("query_avalanche.py")
    assert "shred qs" in out
    lines = [l for l in out.splitlines() if l.strip() and l.strip()[0].isdigit()]
    shred_counts = {int(l.split("|")[1].split()[0]) for l in lines}
    assert shred_counts == {4}  # constant across scales


@pytest.mark.slow
def test_indexing_schemes():
    out = _run("indexing_schemes.py")
    assert "[canonical]" in out and "[natural]" in out and "[flat]" in out
    assert "same nested value: True" in out
