"""Tests for the §9 extensions: set/list semantics and CTE deduplication."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import ShreddingError, SqlGenerationError
from repro.nrc.semantics import evaluate
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal, dedup_nested


class TestDedupNested:
    def test_flat_dedup(self):
        assert dedup_nested([1, 1, 2]) == [1, 2]

    def test_hereditary(self):
        # Inner bags dedup first, making the two outer elements equal.
        value = [{"xs": [1, 1]}, {"xs": [1]}]
        assert dedup_nested(value) == [{"xs": [1]}]

    def test_order_of_first_occurrence_kept(self):
        assert dedup_nested([3, 1, 3, 1, 2]) == [3, 1, 2]

    def test_scalar_passthrough(self):
        assert dedup_nested(5) == 5


class TestSetSemantics:
    def test_duplicates_eliminated(self, schema, db):
        compiled = ShreddingPipeline(schema).compile(queries.QF4)
        bag = compiled.run(db)
        as_set = compiled.run(db, collection="set")
        assert len(as_set) < len(bag)  # Drew appears twice in the bag
        assert bag_equal(as_set, dedup_nested(bag))

    def test_nested_set_semantics(self, schema, db):
        compiled = ShreddingPipeline(schema).compile(queries.Q6)
        as_set = compiled.run(db, collection="set")
        assert bag_equal(as_set, dedup_nested(evaluate(queries.Q6, db)))

    def test_unknown_collection_rejected(self, schema, db):
        compiled = ShreddingPipeline(schema).compile(queries.Q4)
        with pytest.raises(ShreddingError):
            compiled.run(db, collection="tree")


class TestListSemantics:
    @pytest.mark.parametrize("name", ["Q1", "Q4", "Q6"])
    def test_matches_list_semantics_exactly(self, name, schema, db):
        """Ordered shredding reproduces N⟦−⟧'s *list* (not just multiset)."""
        query = queries.NESTED_QUERIES[name]
        pipeline = ShreddingPipeline(schema, SqlOptions(ordered=True))
        out = pipeline.compile(query).run(db, collection="list")
        assert out == evaluate(query, db)

    def test_deterministic_across_runs(self, schema, db):
        compiled = ShreddingPipeline(schema, SqlOptions(ordered=True)).compile(
            queries.Q6
        )
        assert compiled.run(db, collection="list") == compiled.run(
            db, collection="list"
        )

    def test_list_mode_requires_ordered_compilation(self, schema, db):
        compiled = ShreddingPipeline(schema).compile(queries.Q4)
        with pytest.raises(ShreddingError):
            compiled.run(db, collection="list")

    def test_ordered_requires_flat_scheme(self):
        with pytest.raises(SqlGenerationError):
            SqlOptions(scheme="natural", ordered=True)

    def test_ordering_columns_in_sql(self, schema):
        compiled = ShreddingPipeline(schema, SqlOptions(ordered=True)).compile(
            queries.Q4
        )
        for _, sql in compiled.sql_by_path:
            assert "__branch" in sql and "ORDER BY" in sql

    def test_bag_mode_still_correct_when_ordered(self, schema, db):
        pipeline = ShreddingPipeline(schema, SqlOptions(ordered=True))
        out = pipeline.run(queries.Q6, db)
        assert bag_equal(out, evaluate(queries.Q6, db))


class TestCteDedup:
    def test_identical_ctes_shared(self, schema):
        plain = ShreddingPipeline(schema).compile(queries.Q6)
        deduped = ShreddingPipeline(
            schema, SqlOptions(dedup_cte=True)
        ).compile(queries.Q6)
        people = "↓.people"
        assert dict(plain.sql_by_path)[people].count(" AS (SELECT") == 2
        assert dict(deduped.sql_by_path)[people].count(" AS (SELECT") == 1

    def test_results_unchanged(self, schema, db):
        deduped = ShreddingPipeline(schema, SqlOptions(dedup_cte=True))
        for name, query in queries.NESTED_QUERIES.items():
            assert bag_equal(
                deduped.run(query, db), evaluate(query, db)
            ), name

    def test_distinct_ctes_not_merged(self, schema, db):
        # Q1's employees and contacts levels share the departments CTE, but
        # the tasks level needs departments×employees — a different body.
        deduped = ShreddingPipeline(
            schema, SqlOptions(dedup_cte=True)
        ).compile(queries.Q1)
        tasks_sql = dict(deduped.sql_by_path)["↓.employees.↓.tasks"]
        assert "employees" in tasks_sql
        assert bag_equal(deduped.run(db), evaluate(queries.Q1, db))
