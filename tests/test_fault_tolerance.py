"""Fault-tolerant serving, proven by deterministic fault injection.

The differential property this suite drives end to end: **under any
injected single-shard failure, a sharded query either returns a result
nested-multiset-equal to single-session execution (failover) or raises a
structured error within its deadline — never a hang, never a silently
wrong answer.**

Layers, smallest to largest:

* the resilience primitives (``Deadline`` / ``RetryPolicy`` /
  ``CircuitBreaker``) under injectable clocks — pure state-machine tests;
* one client against one server behind a :class:`~tests.fault_injection.
  FaultyProxy`: desync-on-truncated-frame regression, uniform timeouts,
  client- and server-side deadlines, retries, breaker trip/heal;
* server admission control (``OVERLOADED`` shedding, ping under
  saturation) and graceful drain (in-flight finishes, new connects
  refused);
* the sharded deployment: proactive + reactive failover with exact
  counters, per-shard error attribution, an in-process down-shard hammer,
  ``serve`` *subprocess* kill/restart, and the hypothesis property over
  random (query × fault × shard) combinations.
"""

from __future__ import annotations

import asyncio
import os
import sqlite3
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import connect
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.data.queries import NESTED_QUERIES
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ServiceConnectionError,
    ServiceError,
    ShardUnavailableError,
)
from repro.service import (
    PROTOCOL_VERSION,
    AsyncServiceClient,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    ServiceClient,
    paper_registry,
    serve_in_background,
)
from repro.shard import (
    ShardedDatabase,
    ShardedServiceClient,
    connect_sharded,
    shard_for,
)
from repro.values import assert_bag_equal, bag_equal

from .fault_injection import FaultyProxy, ShardProcess, register_slow

PLACEMENT = organisation_placement()
REGISTRY = paper_registry()

_settings = settings(
    max_examples=int(os.environ.get("REPRO_FAULT_EXAMPLES", "8")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

_SINGLE: dict = {}


def _single():
    if "session" not in _SINGLE:
        _SINGLE["session"] = connect(figure3_database())
    return _SINGLE["session"]


def _expected(name: str, params: dict | None = None):
    key = (name, str(params))
    if key not in _SINGLE:
        term = (
            REGISTRY.lookup(name).term
            if name in ("staff_above", "dept_staff")
            else NESTED_QUERIES[name]
        )
        _SINGLE[key] = _single().run(term, params=params).value
    return _SINGLE[key]


# --------------------------------------------------------------------------
# Resilience primitives: pure, clock-injected state machines.


class TestDeadline:
    def test_unbounded_never_expires_and_caps_pass_through(self):
        deadline = Deadline(None)
        assert not deadline.expired
        assert deadline.remaining() is None
        assert deadline.remaining(cap=7.5) == 7.5
        deadline.check("anything")  # no raise

    def test_bounded_counts_down_on_the_injected_clock(self):
        now = [100.0]
        deadline = Deadline(2.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(2.0)
        assert deadline.remaining(cap=0.5) == 0.5
        now[0] += 1.5
        assert deadline.remaining() == pytest.approx(0.5)
        assert deadline.remaining(cap=2.0) == pytest.approx(0.5)
        now[0] += 1.0
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError, match="2000ms.*probing"):
            deadline.check("probing")

    def test_after_millis_round_trips(self):
        assert Deadline.after_millis(250).millis == 250
        assert Deadline.after_millis(None).millis is None


class TestRetryPolicy:
    def test_backoff_is_exponential_capped_and_jittered_downward(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.5, multiplier=2.0, jitter=0.5
        )
        import random

        rng = random.Random(7)
        raw = [0.1, 0.2, 0.4, 0.5, 0.5]  # exponential, capped at max_delay
        for attempt, ceiling in enumerate(raw):
            delay = policy.backoff(attempt, rng)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_none_means_one_attempt(self):
        assert RetryPolicy.none().attempts == 1


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens_on_timer(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=lambda: now[0]
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # not yet at the threshold
        breaker.record_failure()
        assert breaker.state == "open" and breaker.is_open
        assert not breaker.allow() and breaker.fast_failures == 1
        now[0] += 10.0
        assert breaker.state == "half-open" and not breaker.is_open
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # concurrent callers wait for the probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.trips == 1

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] += 5.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        now[0] += 4.9
        assert breaker.state == "open"  # cooldown restarted at the probe
        now[0] += 0.2
        assert breaker.state == "half-open"

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# --------------------------------------------------------------------------
# One client, one server, one proxy: transport faults.


@pytest.fixture(scope="module")
def proxied_service():
    """Server + FaultyProxy; tests reset the proxy to ``pass`` themselves."""
    session = connect(figure3_database())
    registry = paper_registry()
    register_slow(registry, "slow", 0.8)
    handle = serve_in_background(session, registry, pool_size=2)
    proxy = FaultyProxy(handle.host, handle.port, label="service")
    try:
        yield handle, proxy
    finally:
        proxy.close()
        handle.stop()


@pytest.fixture
def proxy_client(proxied_service):
    _handle, proxy = proxied_service
    proxy.set_mode("pass")
    client = ServiceClient(
        proxy.host, proxy.port, timeout=5, retry=RetryPolicy.none()
    )
    try:
        yield proxy, client
    finally:
        proxy.set_mode("pass")
        client.close()


class TestDesyncRegression:
    def test_truncated_frame_then_next_request_gets_the_right_answer(
        self, proxy_client
    ):
        # The PR 4 bug: a partial read left buffered bytes on the socket,
        # so the *next* request read a stale response.  Now any transport
        # error drops the connection; the next request reconnects clean.
        proxy, client = proxy_client
        assert bag_equal(client.execute("Q1"), _expected("Q1"))
        proxy.set_mode("truncate")
        with pytest.raises(ServiceConnectionError):
            client.execute("Q2")
        proxy.set_mode("pass")
        assert bag_equal(client.execute("Q1"), _expected("Q1"))
        assert proxy.faults_injected >= 1
        assert client.reconnects >= 1

    def test_transparent_retry_reconnects_within_one_call(
        self, proxied_service
    ):
        handle, proxy = proxied_service
        proxy.set_mode("pass")
        with ServiceClient(
            proxy.host,
            proxy.port,
            timeout=5,
            retry=RetryPolicy(attempts=3, base_delay=0.01),
        ) as client:
            assert bag_equal(client.execute("Q1"), _expected("Q1"))
            # Cut the live connection: the proxy kills both sides, so the
            # next request hits a dead socket, reconnects and retries.
            proxy.set_mode("refuse")
            proxy.set_mode("pass")
            assert bag_equal(client.execute("Q2"), _expected("Q2"))
            assert client.retries >= 1

    def test_timed_out_response_is_never_misdelivered(self, proxied_service):
        # Response delayed past the client timeout: the first request
        # fails, and its late response must NOT answer the next request.
        handle, proxy = proxied_service
        proxy.set_mode("delay")
        proxy.delay = 0.6
        with ServiceClient(
            proxy.host, proxy.port, timeout=0.2, retry=RetryPolicy.none()
        ) as client:
            with pytest.raises(ServiceConnectionError):
                client.execute("Q1")
            proxy.set_mode("pass")
            time.sleep(0.7)  # the stale response arrives... nowhere
            response = client.execute_full("Q3")
            assert response["query"] == "Q3"
            assert bag_equal(response["rows"], _expected("Q3"))


class TestUniformTimeouts:
    def test_default_timeout_is_documented_and_uniform(self):
        from repro.service.client import DEFAULT_TIMEOUT

        assert DEFAULT_TIMEOUT == 30.0
        blocking = ServiceClient("127.0.0.1", 1, connect_now=False)
        asyncio_client = AsyncServiceClient("127.0.0.1", 1)
        assert blocking.timeout == asyncio_client.timeout == DEFAULT_TIMEOUT

    def test_blocking_read_timeout_applies_mid_request(self, proxy_client):
        proxy, _client = proxy_client
        proxy.set_mode("drop")
        with ServiceClient(
            proxy.host, proxy.port, timeout=0.2, retry=RetryPolicy.none()
        ) as client:
            started = time.monotonic()
            with pytest.raises(ServiceConnectionError):
                client.execute("Q1")
            assert time.monotonic() - started < 2.0

    def test_blocking_connect_timeout_is_threaded(self, proxied_service):
        handle, proxy = proxied_service
        client = ServiceClient(
            proxy.host, proxy.port, timeout=0.25, connect_now=False
        )
        # The connect timeout rides the socket; prove it reaches
        # create_connection by racing a deadline that expires first.
        with pytest.raises(DeadlineExceededError):
            client.request({"op": "ping"}, deadline_ms=0.0001, retry=False)

    def test_async_connect_timeout(self, monkeypatch):
        async def never_connect(*args, **kwargs):
            await asyncio.sleep(60)

        async def go():
            monkeypatch.setattr(asyncio, "open_connection", never_connect)
            client = AsyncServiceClient("127.0.0.1", 9, timeout=0.1)
            with pytest.raises(ServiceConnectionError, match="timed out"):
                await client.connect()

        asyncio.run(go())

    def test_async_read_timeout_and_deadline(self, proxied_service):
        handle, proxy = proxied_service
        proxy.set_mode("drop")
        try:

            async def go():
                client = AsyncServiceClient(proxy.host, proxy.port, timeout=0.2)
                with pytest.raises(ServiceConnectionError):
                    await client.execute("Q1")
                client2 = AsyncServiceClient(proxy.host, proxy.port, timeout=5)
                with pytest.raises(DeadlineExceededError):
                    await client2.execute("Q1", deadline_ms=150)
                await client.close()
                await client2.close()

            asyncio.run(go())
        finally:
            proxy.set_mode("pass")

    def test_async_ping_round_trips(self, proxied_service):
        handle, proxy = proxied_service
        proxy.set_mode("pass")

        async def go():
            async with AsyncServiceClient(proxy.host, proxy.port) as client:
                return await client.ping()

        pong = asyncio.run(go())
        assert pong["pong"] is True and pong["draining"] is False


class TestDeadlines:
    def test_client_deadline_bounds_a_slow_query(self, proxy_client):
        _proxy, client = proxy_client
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            client.execute("slow", deadline_ms=200)  # query sleeps 0.8s
        elapsed = time.monotonic() - started
        assert elapsed < 2 * 0.2 + 0.3  # structured error within 2× deadline

    def test_server_side_default_deadline(self):
        session = connect(figure3_database())
        registry = paper_registry()
        register_slow(registry, "slow", 0.8)
        handle = serve_in_background(
            session, registry, pool_size=1, default_deadline_ms=150
        )
        try:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(DeadlineExceededError, match="server-side"):
                    client.execute("slow")
            assert handle.server.deadline_count == 1
            # The straggler's lease is reclaimed: the next query runs fine.
            with ServiceClient(handle.host, handle.port) as client:
                assert bag_equal(client.execute("Q1"), _expected("Q1"))
        finally:
            handle.stop()

    def test_ping_carries_protocol_and_shard(self, proxy_client):
        _proxy, client = proxy_client
        pong = client.ping()
        assert pong["pong"] is True
        assert pong["protocol"] == PROTOCOL_VERSION
        assert pong["shard"] is None and pong["draining"] is False


class TestCircuitBreakerIntegration:
    def test_breaker_trips_then_fails_fast_then_heals(self, proxied_service):
        handle, proxy = proxied_service
        proxy.set_mode("refuse")
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=0.2)
        client = ServiceClient(
            proxy.host,
            proxy.port,
            timeout=5,
            retry=RetryPolicy.none(),
            breaker=breaker,
            connect_now=False,
        )
        try:
            for _ in range(2):
                with pytest.raises(ServiceConnectionError):
                    client.execute("Q1")
            assert breaker.state == "open"
            started = time.monotonic()
            with pytest.raises(ServiceConnectionError) as excinfo:
                client.execute("Q1")
            assert excinfo.value.kind == "CircuitOpen"
            assert time.monotonic() - started < 0.05  # no socket was touched
            # Cooldown elapses, the endpoint heals, a probe closes it.
            proxy.set_mode("pass")
            time.sleep(0.25)
            assert bag_equal(client.execute("Q1"), _expected("Q1"))
            assert breaker.state == "closed" and breaker.trips == 1
        finally:
            client.close()
            proxy.set_mode("pass")


# --------------------------------------------------------------------------
# Admission control and graceful drain.


class TestAdmissionControl:
    def test_overloaded_sheds_immediately_and_ping_survives(self):
        session = connect(figure3_database())
        registry = paper_registry()
        register_slow(registry, "slow", 0.8)
        handle = serve_in_background(
            session, registry, pool_size=1, max_pending=1
        )
        outcomes: dict = {}

        def first():
            with ServiceClient(handle.host, handle.port) as client:
                outcomes["first"] = client.execute("slow")

        try:
            thread = threading.Thread(target=first)
            thread.start()
            time.sleep(0.3)  # the slow execute is admitted and in flight
            with ServiceClient(handle.host, handle.port) as client:
                started = time.monotonic()
                with pytest.raises(OverloadedError, match="admission limit"):
                    client.execute("slow")
                # Shed at admission: an error frame *now*, not a timeout.
                assert time.monotonic() - started < 0.3
                # Health checks keep answering exactly when saturated.
                assert client.ping()["pong"] is True
                stats = client.stats()["server"]
                assert stats["max_pending"] == 1
                assert stats["shed"] == 1
            thread.join(timeout=10)
            assert bag_equal(outcomes["first"], _expected("Q1"))
            assert handle.server.shed_count == 1
        finally:
            handle.stop()


class TestGracefulShutdown:
    def test_in_flight_completes_and_new_connects_are_refused(self):
        session = connect(figure3_database())
        registry = paper_registry()
        register_slow(registry, "slow", 0.8)
        handle = serve_in_background(session, registry, pool_size=1)
        outcomes: dict = {}

        def in_flight():
            with ServiceClient(handle.host, handle.port) as client:
                outcomes["rows"] = client.execute("slow")

        thread = threading.Thread(target=in_flight)
        thread.start()
        time.sleep(0.3)  # request is dispatched server-side
        handle.stop()  # graceful drain: waits for the answer to flush
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert bag_equal(outcomes["rows"], _expected("Q1"))
        with pytest.raises(OSError):
            ServiceClient(handle.host, handle.port, timeout=2)


# --------------------------------------------------------------------------
# The sharded deployment: failover, attribution, exact counters.

SHARDS = 2

_CLUSTER: dict = {}


def _cluster():
    """2 partition servers + full-copy fallback, each behind a proxy."""
    if not _CLUSTER:
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, SHARDS)
        handles = [
            serve_in_background(
                connect(db), REGISTRY, pool_size=2,
                shard_label=f"{index}/{SHARDS}",
            )
            for index, db in enumerate(sdb.shards)
        ]
        fallback = serve_in_background(
            connect(sdb.full), REGISTRY, pool_size=2,
            shard_label=f"full/{SHARDS}",
        )
        proxies = [
            FaultyProxy(handle.host, handle.port, label=f"shard-{index}")
            for index, handle in enumerate(handles)
        ] + [FaultyProxy(fallback.host, fallback.port, label="fallback")]
        _CLUSTER["handles"] = handles + [fallback]
        _CLUSTER["proxies"] = proxies
    return _CLUSTER["proxies"]


def _cluster_client(**kwargs) -> ShardedServiceClient:
    proxies = _cluster()
    defaults = dict(
        placement=PLACEMENT,
        registry=REGISTRY,
        schema=ORGANISATION_SCHEMA,
        timeout=5,
        retry=RetryPolicy(attempts=2, base_delay=0.01),
        breaker_threshold=1,
        breaker_reset=60.0,
    )
    defaults.update(kwargs)
    return ShardedServiceClient(
        [(proxy.host, proxy.port) for proxy in proxies[:-1]],
        (proxies[-1].host, proxies[-1].port),
        **defaults,
    )


def _reset_cluster() -> None:
    for proxy in _CLUSTER.get("proxies", ()):
        proxy.set_mode("pass")


@pytest.fixture(scope="module", autouse=True)
def _teardown_cluster():
    yield
    for proxy in _CLUSTER.get("proxies", ()):
        proxy.close()
    for handle in _CLUSTER.get("handles", ()):
        handle.stop()
    _CLUSTER.clear()
    for key in list(_SINGLE):
        value = _SINGLE.pop(key)
        if key == "session":
            value.close()


class TestWireFailover:
    def test_reactive_then_proactive_failover_with_exact_counters(self):
        proxies = _cluster()
        _reset_cluster()
        with _cluster_client(deadline_ms=2000) as client:
            assert bag_equal(client.execute("Q4"), _expected("Q4"))
            assert client.failover_retries == 0

            proxies[0].set_mode("refuse")
            # Reactive: shard 0 dies mid-run; the whole query re-runs on
            # the fallback and the answer is still exactly right.
            response = client.execute_full("Q4")
            assert_bag_equal(response["rows"], _expected("Q4"), "reactive")
            assert response["route"] == "failover:fanout"
            assert response["shards"] == []
            assert response["stats"]["failover_retries"] == 1
            assert client.failover_retries == 1

            # The breaker is open now: the next run diverts *before*
            # touching the dead endpoint.
            assert client.down_shards() == frozenset({0})
            response = client.execute_full("Q4")
            assert_bag_equal(response["rows"], _expected("Q4"), "proactive")
            assert response["route"] == "failover:fanout"
            assert response["stats"]["failover_reroutes"] == 1
            assert client.failover_reroutes == 1
        _reset_cluster()

    def test_routed_query_fails_over_only_when_its_owner_dies(self):
        proxies = _cluster()
        _reset_cluster()
        dept = "Research"
        owner = shard_for(dept, SHARDS)
        other = 1 - owner
        with _cluster_client(deadline_ms=2000) as client:
            proxies[other].set_mode("refuse")
            # The dead shard is not on this route: no failover needed.
            response = client.execute_full("dept_staff", params={"dept": dept})
            assert response["route"] == f"routed:{owner}"
            assert_bag_equal(
                response["rows"], _expected("dept_staff", {"dept": dept}), dept
            )
            assert client.failover_retries == client.failover_reroutes == 0

            proxies[other].set_mode("pass")
            proxies[owner].set_mode("refuse")
            response = client.execute_full("dept_staff", params={"dept": dept})
            assert response["route"] == f"failover:routed:{owner}"
            assert_bag_equal(
                response["rows"], _expected("dept_staff", {"dept": dept}), dept
            )
            assert client.failover_retries == 1
        _reset_cluster()

    def test_shard_unavailable_names_shard_and_op(self):
        proxies = _cluster()
        _reset_cluster()
        with _cluster_client(deadline_ms=1000) as client:
            for proxy in proxies:
                proxy.set_mode("refuse")
            with pytest.raises(ShardUnavailableError) as excinfo:
                client.execute("Q4")
            error = excinfo.value
            assert error.shard == f"0/{SHARDS}"
            assert error.op == "execute"
            assert "fallback could not stand in" in str(error)
        _reset_cluster()

    def test_fallback_only_failure_is_attributed_to_the_fallback(self):
        proxies = _cluster()
        _reset_cluster()
        with _cluster_client(deadline_ms=1000) as client:
            proxies[-1].set_mode("refuse")
            # Q5 needs the fallback (non-distributive): no stand-in exists.
            with pytest.raises(ShardUnavailableError) as excinfo:
                client.execute("Q5")
            assert excinfo.value.shard == f"full/{SHARDS}"
            assert excinfo.value.op == "execute"
        _reset_cluster()

    def test_health_checks_observe_and_heal(self):
        proxies = _cluster()
        _reset_cluster()
        with _cluster_client(breaker_reset=0.2) as client:
            verdicts = client.check_health()
            assert verdicts == {
                f"0/{SHARDS}": True,
                f"1/{SHARDS}": True,
                f"full/{SHARDS}": True,
            }
            proxies[1].set_mode("refuse")
            verdicts = client.check_health()
            assert verdicts[f"1/{SHARDS}"] is False
            assert client.down_shards() == frozenset({1})
            proxies[1].set_mode("pass")
            time.sleep(0.25)  # breaker cooldown → half-open
            verdicts = client.check_health()  # the ping is the probe
            assert verdicts[f"1/{SHARDS}"] is True
            assert client.down_shards() == frozenset()
        _reset_cluster()

    def test_sequential_workload_with_one_shard_down_counts_exactly(self):
        proxies = _cluster()
        _reset_cluster()
        workload = [
            ("Q4", None),  # fanout → reactive failover (first touch)
            ("Q4", None),  # fanout → proactive reroute
            ("Q3", None),  # single → live shard answers
            ("Q5", None),  # fallback by analysis (not a failover)
            ("dept_staff", {"dept": "Research"}),
            ("dept_staff", {"dept": "Sales"}),
        ]
        down = 0
        with _cluster_client(deadline_ms=2000) as client:
            proxies[down].set_mode("refuse")
            for name, params in workload:
                rows = client.execute(name, params=params)
                assert bag_equal(rows, _expected(name, params)), name

            owners = {
                dept: shard_for(dept, SHARDS) for dept in ("Research", "Sales")
            }
            expected_reroutes = 1 + sum(
                1 for dept, owner in owners.items() if owner == down
            )
            expected_retries = 1  # only the very first touch is reactive
            expected_shard_requests = [0] * SHARDS
            for dept, owner in owners.items():
                if owner != down:
                    expected_shard_requests[owner] += 1
            # Q3 is replicated-only: the lowest *live* shard answers.
            single_target = next(i for i in range(SHARDS) if i != down)
            expected_shard_requests[single_target] += 1
            assert client.failover_retries == expected_retries
            assert client.failover_reroutes == expected_reroutes
            assert client.shard_requests == expected_shard_requests
            # Every failover and Q5 landed on the fallback.
            assert client.fallback_requests == (
                expected_retries + expected_reroutes + 1
            )
        _reset_cluster()

    def test_stats_survive_a_dead_shard(self):
        proxies = _cluster()
        _reset_cluster()
        with _cluster_client() as client:
            proxies[0].set_mode("refuse")
            report = client.stats()
            assert report["shards"][0] is None  # dead, not an exception
            assert report["shards"][1]["ok"]
            assert report["client"]["breakers"][0]["state"] in (
                "open",
                "closed",  # stats() itself may have been the first failure
            )
        _reset_cluster()


class TestInProcessFailover:
    def test_proactive_reroute_after_mark_shard_down(self):
        session = connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=3
        )
        try:
            session.mark_shard_down(1)
            result = session.run(NESTED_QUERIES["Q4"])
            assert_bag_equal(result.value, _expected("Q4"), "rerouted fanout")
            assert result.route == "failover:fanout"
            assert result.stats.failover_reroutes == 1
            assert session.run_counts()["fallback"] == 1
            session.mark_shard_up(1)
            result = session.run(NESTED_QUERIES["Q4"])
            assert result.route == "fanout"
        finally:
            session.close()

    def test_reactive_failover_marks_the_culprit_down(self, monkeypatch):
        session = connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=3
        )
        try:
            prepared = session.prepare(NESTED_QUERIES["Q4"])
            real = prepared._shard_prepared

            class _DeadPrepared:
                def run(self, **kwargs):
                    raise sqlite3.OperationalError("shard 1 store is gone")

            monkeypatch.setattr(
                prepared,
                "_shard_prepared",
                lambda index: _DeadPrepared() if index == 1 else real(index),
            )
            result = prepared.run()
            assert_bag_equal(result.value, _expected("Q4"), "reactive")
            assert result.route == "failover:fanout"
            assert result.stats.failover_retries == 1
            assert session.down_shards() == frozenset({1})
            # Recovery: health checks probe the (healthy) store directly.
            assert session.check_health() == {0: True, 1: True, 2: True}
            assert session.down_shards() == frozenset()
        finally:
            session.close()

    def test_down_shard_hammer_exact_counters(self):
        threads_n, runs_n, shards_n = 4, 6, 3
        workload = (
            ("dept_staff", {"dept": "Product"}),
            ("Q4", None),
            ("dept_staff", {"dept": "Sales"}),
            ("Q3", None),
            ("Q5", None),
            ("dept_staff", {"dept": "Research"}),
        )
        down = 1
        session = connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=shards_n
        )
        session.mark_shard_down(down)
        dept_staff = REGISTRY.lookup("dept_staff").term
        failures: list = []

        def worker(thread_index: int) -> None:
            try:
                for run_index in range(runs_n):
                    name, params = workload[
                        (thread_index + run_index) % len(workload)
                    ]
                    term = (
                        dept_staff
                        if name == "dept_staff"
                        else NESTED_QUERIES[name]
                    )
                    result = session.run(term, params=params)
                    if not bag_equal(result.value, _expected(name, params)):
                        failures.append((name, params, result.route))
            except Exception as error:  # noqa: BLE001 — collect, don't die
                failures.append((thread_index, repr(error)))

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures

        per_shard = [0] * shards_n
        reroutes = routed = singles = fallbacks = 0
        for thread_index in range(threads_n):
            for run_index in range(runs_n):
                name, params = workload[
                    (thread_index + run_index) % len(workload)
                ]
                if name == "dept_staff":
                    owner = shard_for(params["dept"], shards_n)
                    if owner == down:
                        reroutes += 1
                    else:
                        per_shard[owner] += 1
                        routed += 1
                elif name == "Q4":
                    reroutes += 1  # fanout cannot run with a shard down
                elif name == "Q3":
                    live = next(i for i in range(shards_n) if i != down)
                    per_shard[live] += 1
                    singles += 1
                else:  # Q5
                    fallbacks += 1
        counts = session.run_counts()
        stats = session.stats_snapshot()
        assert counts["per_shard"] == per_shard
        assert counts["fallback"] == reroutes + fallbacks
        assert stats["failover_reroutes"] == reroutes
        assert stats["failover_retries"] == 0  # every diversion was planned
        assert stats["routed"] == routed
        assert stats["singles"] == singles
        assert stats["fallbacks"] == fallbacks
        assert stats["fanouts"] == 0
        assert stats["down_shards"] == [down]
        session.close()


# --------------------------------------------------------------------------
# Whole processes dying: serve --shard i/n subprocesses, kill + restart.


@pytest.mark.slow
class TestSubprocessShards:
    def test_kill_failover_restart_recover(self):
        procs = [
            ShardProcess(shard=f"{index}/2") for index in range(2)
        ]
        fallback_proc = ShardProcess(shard="full/2")
        registry = paper_registry()
        client = ShardedServiceClient(
            [("127.0.0.1", proc.port) for proc in procs],
            ("127.0.0.1", fallback_proc.port),
            placement=PLACEMENT,
            registry=registry,
            schema=ORGANISATION_SCHEMA,
            timeout=5,
            deadline_ms=5000,
            retry=RetryPolicy(attempts=2, base_delay=0.01),
            breaker_threshold=1,
            breaker_reset=0.5,
        )
        try:
            assert bag_equal(client.execute("Q4"), _expected("Q4"))
            assert client.failover_retries == 0

            procs[0].kill()  # SIGKILL: the OS resets its connections
            response = client.execute_full("Q4")
            assert_bag_equal(response["rows"], _expected("Q4"), "shard killed")
            assert response["route"].startswith("failover:")
            assert client.failover_retries == 1

            # While it is down, routes divert proactively.
            response = client.execute_full("Q4")
            assert response["route"] == "failover:fanout"
            assert_bag_equal(response["rows"], _expected("Q4"), "still down")

            procs[0].restart()
            time.sleep(0.6)  # breaker cooldown
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.check_health()["0/2"]:
                    break
                time.sleep(0.2)
            assert client.down_shards() == frozenset()
            response = client.execute_full("Q4")
            assert response["route"] == "fanout"
            assert_bag_equal(response["rows"], _expected("Q4"), "recovered")
        finally:
            client.close()
            for proc in [*procs, fallback_proc]:
                proc.close()


# --------------------------------------------------------------------------
# The headline property: random query × random single-shard fault.

FAULT_MODES = ("pass", "refuse", "drop", "truncate", "delay")
PROPERTY_QUERIES = tuple(sorted(NESTED_QUERIES)) + ("staff_above", "dept_staff")
DEADLINE_MS = 500.0
_WARMED: set = set()


def _warm(name: str, params: dict | None) -> None:
    """First-touch compiles are real work — keep them out of the measured
    fault window by warming every server through healthy proxies."""
    if name in _WARMED:
        return
    _reset_cluster()
    with _cluster_client() as warm:
        warm.execute(name, params=params)
    _WARMED.add(name)


@given(data=st.data())
@_settings
def test_single_shard_fault_differential(data):
    name = data.draw(st.sampled_from(PROPERTY_QUERIES), label="query")
    params = None
    if name == "staff_above":
        params = {
            "min_salary": data.draw(
                st.sampled_from([0, 900, 50_000]), label="min_salary"
            )
        }
    elif name == "dept_staff":
        params = {
            "dept": data.draw(
                st.sampled_from(["Product", "Quality", "Research", "Sales"]),
                label="dept",
            )
        }
    mode = data.draw(st.sampled_from(FAULT_MODES), label="fault")
    target = data.draw(st.integers(0, SHARDS - 1), label="shard")
    expected = _expected(name, params)
    _warm(name, params)

    proxies = _cluster()
    _reset_cluster()
    proxies[target].set_mode(mode)
    client = _cluster_client(deadline_ms=DEADLINE_MS)
    started = time.monotonic()
    try:
        rows = client.execute(name, params=params)
    except ServiceError as error:
        # A structured, attributable error is an acceptable outcome —
        # a bare OSError or a hang is not.
        assert isinstance(
            error,
            (
                ShardUnavailableError,
                ServiceConnectionError,
                DeadlineExceededError,
                OverloadedError,
            ),
        ), error
    else:
        # Whatever the fault, an answered query is *exactly* right.
        assert bag_equal(rows, expected), (name, params, mode, target)
    finally:
        elapsed = time.monotonic() - started
        client.close()
        _reset_cluster()
    # Never a hang: primary + failover each get one deadline, plus real
    # slack for connect/retry overhead on a loaded CI box.
    assert elapsed < 2 * (DEADLINE_MS / 1000.0) + 2.0, (
        name, mode, target, elapsed,
    )
