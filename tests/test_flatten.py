"""Tests for record flattening / unflattening (App. E, Prop. 30)."""

from __future__ import annotations

import pytest

from repro.errors import FlatteningError
from repro.flatten.flatten import (
    FlatColumn,
    KIND_BASE,
    KIND_INDEX_DYN,
    KIND_INDEX_TAG,
    flatten_type,
)
from repro.flatten.unflatten import flatten_value, unflatten_value
from repro.nrc.types import BOOL, INT, STRING, RecordType, bag, record_type
from repro.shred.indexes import FlatIndex, NaturalIndex
from repro.shred.shred_types import INDEX

ITEM = record_type(name=STRING, tasks=INDEX)
ROW = RecordType((("item", ITEM), ("outer", INDEX)))


class TestFlattenType:
    def test_column_names(self):
        names = [c.name for c in flatten_type(ROW)]
        assert names == [
            "item_name",
            "item_tasks_tag",
            "item_tasks_dyn1",
            "outer_tag",
            "outer_dyn1",
        ]

    def test_bare_base_is_value(self):
        assert [c.name for c in flatten_type(STRING)] == ["value"]

    def test_bare_index(self):
        assert [c.name for c in flatten_type(INDEX)] == ["tag", "dyn1"]

    def test_nested_records_concatenate_labels(self):
        f = record_type(a=record_type(b=record_type(c=INT)))
        assert [c.name for c in flatten_type(f)] == ["a_b_c"]

    def test_width_function(self):
        cols = flatten_type(ROW, lambda path: 3 if path == ("outer",) else 1)
        dyn = [c.name for c in cols if c.kind == KIND_INDEX_DYN]
        assert dyn == ["item_tasks_dyn1", "outer_dyn1", "outer_dyn2", "outer_dyn3"]

    def test_bag_rejected(self):
        with pytest.raises(FlatteningError):
            flatten_type(bag(INT))

    def test_zero_width_rejected(self):
        with pytest.raises(FlatteningError):
            flatten_type(INDEX, 0)

    def test_name_collision_detected(self):
        colliding = record_type(**{"a_b": record_type(c=INT), "a": record_type(b_c=INT)})
        with pytest.raises(FlatteningError):
            flatten_type(colliding)


class TestRoundTrip:
    """Prop. 30: unflatten ∘ flatten = id on values."""

    def test_flat_index_row(self):
        value = {
            "item": {"name": "Bert", "tasks": FlatIndex("b", 1)},
            "outer": FlatIndex("a", 1),
        }
        cells = flatten_value(ROW, value)
        assert cells == {
            "item_name": "Bert",
            "item_tasks_tag": "b",
            "item_tasks_dyn1": 1,
            "outer_tag": "a",
            "outer_dyn1": 1,
        }
        assert unflatten_value(ROW, cells) == value

    def test_natural_index_row_with_padding(self):
        width = lambda path: 3  # noqa: E731
        value = {
            "item": {"name": "Bert", "tasks": NaturalIndex("b", (1, 2))},
            "outer": NaturalIndex("a", (1,)),
        }
        cells = flatten_value(ROW, value, width)
        assert cells["item_tasks_dyn3"] is None
        back = unflatten_value(ROW, cells, width, natural=True)
        assert back == value  # NULL padding dropped on the way back

    def test_bool_decoding(self):
        f = record_type(flag=BOOL)
        assert unflatten_value(f, {"flag": 1}) == {"flag": True}
        assert unflatten_value(f, {"flag": 0}) == {"flag": False}

    def test_bare_base(self):
        assert unflatten_value(STRING, {"value": "buy"}) == "buy"
        assert flatten_value(STRING, "buy") == {"value": "buy"}

    def test_flat_index_width_must_be_one(self):
        with pytest.raises(FlatteningError):
            unflatten_value(INDEX, {"tag": "a", "dyn1": 1, "dyn2": 2}, 2)

    def test_non_record_value_rejected(self):
        with pytest.raises(FlatteningError):
            flatten_value(record_type(a=INT), 42)

    def test_non_index_value_rejected(self):
        with pytest.raises(FlatteningError):
            flatten_value(INDEX, "not-an-index")


class TestColumnNaming:
    def test_kinds(self):
        assert FlatColumn(("a",), KIND_BASE, base=INT).name == "a"
        assert FlatColumn(("a",), KIND_INDEX_TAG).name == "a_tag"
        assert FlatColumn(("a",), KIND_INDEX_DYN, dyn_position=2).name == "a_dyn2"

    def test_unknown_kind(self):
        with pytest.raises(FlatteningError):
            FlatColumn((), "weird").name
