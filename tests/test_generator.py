"""Tests for the random organisation-database generator (§8 setup)."""

from __future__ import annotations

from repro.data.generator import TASK_NAMES, generate_organisation, scaled_database


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_organisation(3, 10, 4, seed=7)
        b = generate_organisation(3, 10, 4, seed=7)
        for table in ("departments", "employees", "tasks", "contacts"):
            assert a.raw_rows(table) == b.raw_rows(table)

    def test_different_seed_different_data(self):
        a = generate_organisation(3, 10, 4, seed=1)
        b = generate_organisation(3, 10, 4, seed=2)
        assert a.raw_rows("employees") != b.raw_rows("employees")


class TestShape:
    def test_department_count(self):
        db = generate_organisation(5, 4, 2, seed=0)
        assert db.row_count("departments") == 5

    def test_employees_average(self):
        db = generate_organisation(20, 100, 2, seed=0)
        per_dept = db.row_count("employees") / 20
        assert 70 <= per_dept <= 130  # drawn from [75, 125]

    def test_tasks_zero_to_two_per_employee(self):
        db = generate_organisation(4, 20, 2, seed=0)
        from collections import Counter

        per_employee = Counter(
            row["employee"] for row in db.raw_rows("tasks")
        )
        assert all(1 <= count <= 2 for count in per_employee.values())
        assert db.row_count("tasks") <= 2 * db.row_count("employees")

    def test_tasks_from_vocabulary(self):
        db = generate_organisation(2, 10, 2, seed=0)
        assert {r["task"] for r in db.raw_rows("tasks")} <= set(TASK_NAMES)

    def test_contacts_per_department(self):
        db = generate_organisation(3, 5, 7, seed=0)
        assert db.row_count("contacts") == 21

    def test_ids_are_keys(self):
        db = generate_organisation(3, 10, 4, seed=0)
        for table in ("departments", "employees", "tasks", "contacts"):
            ids = [row["id"] for row in db.raw_rows(table)]
            assert len(set(ids)) == len(ids)

    def test_referential_integrity(self):
        db = generate_organisation(3, 10, 4, seed=0)
        departments = {r["name"] for r in db.raw_rows("departments")}
        assert {r["dept"] for r in db.raw_rows("employees")} <= departments
        assert {r["dept"] for r in db.raw_rows("contacts")} <= departments
        employees = {r["name"] for r in db.raw_rows("employees")}
        assert {r["employee"] for r in db.raw_rows("tasks")} <= employees


class TestOutliers:
    def test_outlier_rates(self):
        db = generate_organisation(20, 100, 2, seed=0)
        salaries = [r["salary"] for r in db.raw_rows("employees")]
        poor = sum(1 for s in salaries if s < 1000)
        rich = sum(1 for s in salaries if s > 1_000_000)
        total = len(salaries)
        assert 0 < poor < 0.15 * total
        assert 0 < rich < 0.10 * total

    def test_clients_exist(self):
        db = generate_organisation(10, 5, 10, seed=0)
        clients = [r for r in db.raw_rows("contacts") if r["client"]]
        assert clients


class TestScaledDatabase:
    def test_scaled_database_wrapper(self):
        db = scaled_database(4, seed=0, scale_rows=10)
        assert db.row_count("departments") == 4
        assert db.row_count("contacts") == 40
