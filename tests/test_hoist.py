"""Tests for stage 2: if-hoisting ⇝h (App. C.2)."""

from __future__ import annotations

from repro.nrc import builders as b
from repro.nrc.ast import Const, If, Prim, Record, Return, Union, Var
from repro.normalise.hoist import hoist_ifs, is_h_normal


def _if(c, t, e):
    return If(Var(c), t, e)


class TestFrames:
    def test_prim_frame(self):
        # 1 + (if c then 2 else 3)  →  if c then 1+2 else 1+3
        term = b.add(Const(1), _if("c", Const(2), Const(3)))
        out = hoist_ifs(term)
        assert out == _if(
            "c", b.add(Const(1), Const(2)), b.add(Const(1), Const(3))
        )

    def test_record_frame(self):
        term = Record((("a", _if("c", Const(1), Const(2))),))
        out = hoist_ifs(term)
        assert out == _if(
            "c", Record((("a", Const(1)),)), Record((("a", Const(2)),))
        )

    def test_return_frame(self):
        term = Return(_if("c", Const(1), Const(2)))
        out = hoist_ifs(term)
        assert out == _if("c", Return(Const(1)), Return(Const(2)))

    def test_union_left_frame(self):
        term = Union(_if("c", Var("m"), Var("n")), Var("p"))
        out = hoist_ifs(term)
        assert out == _if(
            "c", Union(Var("m"), Var("p")), Union(Var("n"), Var("p"))
        )

    def test_union_right_frame(self):
        term = Union(Var("p"), _if("c", Var("m"), Var("n")))
        out = hoist_ifs(term)
        assert out == _if(
            "c", Union(Var("p"), Var("m")), Union(Var("p"), Var("n"))
        )

    def test_multiple_ifs_in_one_prim(self):
        term = b.add(
            _if("c", Const(1), Const(2)), _if("d", Const(3), Const(4))
        )
        out = hoist_ifs(term)
        # Outcome: a tree of conditionals over four plain sums.
        assert is_h_normal(out)
        assert isinstance(out, If)

    def test_nested_record_prim(self):
        term = Record(
            (("x", b.add(Const(1), _if("c", Const(2), Const(3)))),)
        )
        out = hoist_ifs(term)
        assert isinstance(out, If)
        assert is_h_normal(out)


class TestStability:
    def test_leaves_comprehension_bodies_alone(self):
        # `for` is not an if-hoisting frame: where-style conditionals stay.
        term = b.for_(
            "x",
            b.table("t"),
            lambda x: b.where(x["f"], b.ret(x)),
        )
        assert hoist_ifs(term) == term
        assert is_h_normal(term)

    def test_idempotent(self):
        term = Return(
            Record((("a", _if("c", Const(1), Const(2))),))
        )
        once = hoist_ifs(term)
        assert hoist_ifs(once) == once

    def test_is_h_normal_detects(self):
        assert not is_h_normal(Return(_if("c", Const(1), Const(2))))
        assert is_h_normal(_if("c", Return(Const(1)), Return(Const(2))))

    def test_preserves_semantics(self):
        from repro.data.organisation import figure3_database
        from repro.nrc.semantics import evaluate
        from repro.values import bag_equal

        db = figure3_database()
        # Build: for (e ← employees) return ⟨pay = if rich then 1 else 0⟩.
        term = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.ret(
                b.record(
                    name=e["name"],
                    flag=b.if_(
                        b.gt(e["salary"], b.const(50000)),
                        b.const(1),
                        b.const(0),
                    ),
                )
            ),
        )
        assert bag_equal(evaluate(term, db), evaluate(hoist_ifs(term), db))
