"""Tests for indexing schemes (§6, Lemma 24 validity)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import IndexingError
from repro.normalise import normalise
from repro.shred.indexes import (
    CanonicalIndex,
    FlatIndex,
    NaturalIndex,
    TOP_DYNAMIC,
    canonical_index_fn,
    canonical_indexes,
    check_valid,
    flat_index_fn,
    index_fn_for,
    natural_index_fn,
)
from repro.shred.shredded_ast import TOP_TAG


class TestCanonicalIndexes:
    def test_enumeration_order_and_shape(self, schema, db):
        nf = normalise(queries.Q6, schema)
        cans = canonical_indexes(nf, db, schema)
        # 4 departments (tag a), 3 outlier employees (b), 2 clients (d),
        # 4 tasks of outliers (c: build, call, enthuse, call), 2 buys (e).
        by_tag = {}
        for can in cans:
            by_tag.setdefault(can.tag, []).append(can)
        assert {tag: len(v) for tag, v in by_tag.items()} == {
            "a": 4,
            "b": 3,
            "c": 4,
            "d": 2,
            "e": 2,
        }
        # Dynamic indexes extend the parent context by one position
        # (ι starts at the top-level 1, so depth k has length k+1).
        for can in by_tag["a"]:
            assert len(can.dyn) == 2
        for can in by_tag["b"]:
            assert len(can.dyn) == 3
        for can in by_tag["c"]:
            assert len(can.dyn) == 4

    def test_all_distinct(self, schema, db):
        nf = normalise(queries.Q6, schema)
        cans = canonical_indexes(nf, db, schema)
        assert len(set(cans)) == len(cans)

    def test_untagged_rejected(self, schema, db):
        nf = normalise(queries.Q4, schema, with_tags=False)
        with pytest.raises(IndexingError):
            canonical_indexes(nf, db, schema)


class TestValidity:
    """Lemma 24: the concrete, natural, and flat schemes are all valid."""

    @pytest.mark.parametrize("scheme", ["canonical", "natural", "flat"])
    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_schemes_valid_on_paper_queries(self, scheme, name, schema, db):
        nf = normalise(queries.NESTED_QUERIES[name], schema)
        index = index_fn_for(scheme, nf, db, schema)
        check_valid(index, canonical_indexes(nf, db, schema))

    def test_invalid_scheme_detected(self, schema, db):
        nf = normalise(queries.Q6, schema)
        constant = lambda tag, dyn: 42  # noqa: E731 — deliberately bogus
        with pytest.raises(IndexingError):
            check_valid(constant, canonical_indexes(nf, db, schema))

    def test_undefined_scheme_detected(self, schema, db):
        nf = normalise(queries.Q6, schema)

        def partial(tag, dyn):
            raise IndexingError("undefined")

        with pytest.raises(IndexingError):
            check_valid(partial, canonical_indexes(nf, db, schema))

    def test_unknown_scheme_name(self, schema, db):
        nf = normalise(queries.Q6, schema)
        with pytest.raises(IndexingError):
            index_fn_for("bogus", nf, db, schema)


class TestNaturalScheme:
    def test_keys_accumulate_all_levels(self, schema, db):
        """§9: "our indexes take information at all higher levels into
        account" — the natural dynamic index of a depth-2 comprehension
        contains the keys of both generators."""
        nf = normalise(queries.Q6, schema)
        index = natural_index_fn(nf, db, schema)
        cans = [c for c in canonical_indexes(nf, db, schema) if c.tag == "b"]
        for can in cans:
            natural = index(can.tag, can.dyn)
            assert isinstance(natural, NaturalIndex)
            assert len(natural.keys) == 2  # department id + employee id

    def test_top_special_cased(self, schema, db):
        nf = normalise(queries.Q6, schema)
        index = natural_index_fn(nf, db, schema)
        assert index(TOP_TAG, TOP_DYNAMIC) == NaturalIndex(TOP_TAG, ())

    def test_undefined_off_domain(self, schema, db):
        nf = normalise(queries.Q6, schema)
        index = natural_index_fn(nf, db, schema)
        with pytest.raises(IndexingError):
            index("a", (99, 99))


class TestFlatScheme:
    def test_positions_start_at_one_per_tag(self, schema, db):
        nf = normalise(queries.Q6, schema)
        index = flat_index_fn(nf, db, schema)
        cans = canonical_indexes(nf, db, schema)
        by_tag: dict[str, list[FlatIndex]] = {}
        for can in cans:
            by_tag.setdefault(can.tag, []).append(index(can.tag, can.dyn))
        for tag, flats in by_tag.items():
            assert [f.position for f in flats] == list(
                range(1, len(flats) + 1)
            ), f"tag {tag} not densely enumerated"

    def test_top_special_cased(self, schema, db):
        nf = normalise(queries.Q6, schema)
        index = flat_index_fn(nf, db, schema)
        assert index(TOP_TAG, TOP_DYNAMIC) == FlatIndex(TOP_TAG, 1)


class TestCanonicalFn:
    def test_identity(self):
        assert canonical_index_fn("a", (1, 2)) == CanonicalIndex("a", (1, 2))
        assert str(CanonicalIndex("a", (1, 2, 3))) == "a·1.2.3"
