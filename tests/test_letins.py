"""Tests for let-insertion (§6.2, Figs. 6-7, Theorems 5-6)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import LetInsertionError
from repro.letins.ast import (
    IndexPrim,
    LetIndex,
    LetQuery,
    ZIndex,
    ZProj,
)
from repro.letins.semantics import run_let
from repro.letins.translate import let_insert
from repro.normalise import normalise
from repro.nrc.typecheck import infer
from repro.shred.indexes import flat_index_fn
from repro.shred.paths import paths
from repro.shred.semantics import run_shredded
from repro.shred.shredded_ast import TOP_TAG
from repro.shred.translate import shred_query


@pytest.fixture
def q6_lets(schema):
    nf = normalise(queries.Q6, schema)
    a = infer(queries.Q6, schema)
    return nf, [let_insert(shred_query(nf, p)) for p in paths(a)]


class TestShape:
    def test_top_level_comp_has_no_let(self, q6_lets):
        _, (l1, _, _) = q6_lets
        comp = l1.comps[0]
        assert comp.outer is None
        assert comp.body_outer == LetIndex(TOP_TAG, 1)

    def test_nested_comp_gets_outer_subquery(self, q6_lets):
        _, (_, l2, _) = q6_lets
        for comp in l2.comps:
            assert comp.outer is not None
            assert [g.table for g in comp.outer.generators] == ["departments"]
            assert comp.body_outer == LetIndex("a", ZIndex())

    def test_inner_block_keeps_last_generators(self, q6_lets):
        _, (_, l2, l3) = q6_lets
        employees_branch = l2.comps[0]
        assert [g.table for g in employees_branch.generators] == ["employees"]
        task_branch = l3.comps[0]
        # Outer query gathers departments AND employees; tasks stay inner.
        assert [g.table for g in task_branch.outer.generators] == [
            "departments",
            "employees",
        ]
        assert [g.table for g in task_branch.generators] == ["tasks"]

    def test_outer_var_references_become_z_projections(self, q6_lets):
        _, (_, l2, l3) = q6_lets
        # q2's employee branch condition references x1.name → z.1.1.name.
        condition = l2.comps[0].where
        assert _contains(condition, ZProj(1, "name"))
        # q3's task branch condition references x2.name (the 2nd outer
        # generator) → z.1.2.name.
        condition = l3.comps[0].where
        assert _contains(condition, ZProj(2, "name"))

    def test_inner_index_becomes_index_prim(self, q6_lets):
        _, (_, l2, _) = q6_lets
        tasks = l2.comps[0].body_value.field("tasks")
        assert tasks == LetIndex("b", IndexPrim())

    def test_buy_branch_keeps_constant_body(self, q6_lets):
        from repro.normalise.normal_form import ConstNF

        _, (_, _, l3) = q6_lets
        buy = l3.comps[1]
        assert buy.generators == ()
        assert buy.body_value == ConstNF("buy")
        assert buy.body_outer == LetIndex("d", ZIndex())


class TestTheorem6:
    """S♭⟦M⟧ = L⟦L(M)⟧: the let-inserted semantics coincides with the
    shredded semantics under the flat indexing scheme."""

    @pytest.mark.parametrize(
        "name", sorted({**queries.FLAT_QUERIES, **queries.NESTED_QUERIES})
    )
    def test_agreement_on_paper_queries(self, name, schema, db):
        query = {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}[name]
        nf = normalise(query, schema)
        a = infer(query, schema)
        flat_index = flat_index_fn(nf, db, schema)
        for path in paths(a):
            shredded = shred_query(nf, path)
            expected = run_shredded(shredded, db, flat_index)
            actual = run_let(let_insert(shredded), db)
            assert actual == expected, f"{name} @ {path}"

    @pytest.mark.parametrize("name", ["Q1", "Q3", "Q6"])
    def test_agreement_on_random_db(self, name, schema, small_random_db):
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        a = infer(query, schema)
        flat_index = flat_index_fn(nf, small_random_db, schema)
        for path in paths(a):
            shredded = shred_query(nf, path)
            expected = run_shredded(shredded, small_random_db, flat_index)
            actual = run_let(let_insert(shredded), small_random_db)
            assert actual == expected, f"{name} @ {path}"


class TestErrors:
    def test_empty_comprehension_rejected(self):
        from repro.normalise.normal_form import ConstNF
        from repro.shred.shredded_ast import IndexRef, OUT, ShredComp, ShredQuery

        blockless = ShredComp(
            blocks=(), tag="a", outer=IndexRef(TOP_TAG, OUT), inner=ConstNF(1)
        )
        with pytest.raises(LetInsertionError):
            let_insert(ShredQuery((blockless,)))

    def test_pretty_let_runs(self, q6_lets):
        from repro.letins.ast import pretty_let

        _, lets = q6_lets
        for let_query in lets:
            text = pretty_let(let_query)
            assert "return" in text

    def test_empty_query_pretty(self):
        from repro.letins.ast import pretty_let

        assert pretty_let(LetQuery(())) == "∅"


def _contains(expr, needle) -> bool:
    from repro.normalise.normal_form import EmptyNF, PrimNF

    if expr == needle:
        return True
    if isinstance(expr, PrimNF):
        return any(_contains(arg, needle) for arg in expr.args)
    if isinstance(expr, EmptyNF):
        query = expr.query
        comps = getattr(query, "comprehensions", None) or getattr(
            query, "comps", ()
        )
        for comp in comps:
            if hasattr(comp, "where") and _contains(comp.where, needle):
                return True
            for block in getattr(comp, "blocks", ()):
                if _contains(block.where, needle):
                    return True
    return False
