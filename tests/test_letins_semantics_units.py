"""Unit tests for the let-inserted semantics L⟦−⟧ (Fig. 6) in isolation."""

from __future__ import annotations

import pytest

from repro.errors import LetInsertionError
from repro.letins.ast import (
    IndexPrim,
    LetComp,
    LetIndex,
    LetQuery,
    OuterSubquery,
    ZIndex,
    ZProj,
)
from repro.letins.semantics import run_let
from repro.normalise.normal_form import (
    ConstNF,
    Generator,
    PrimNF,
    TRUE_NF,
    VarField,
)
from repro.shred.indexes import FlatIndex
from repro.shred.shredded_ast import SRecord, TOP_TAG


def _top_comp(**overrides):
    defaults = dict(
        outer=None,
        generators=(Generator("x", "departments"),),
        where=TRUE_NF,
        tag="a",
        body_outer=LetIndex(TOP_TAG, 1),
        body_value=VarField("x", "name"),
    )
    defaults.update(overrides)
    return LetComp(**defaults)


class TestTopLevel:
    def test_enumerates_rows_in_canonical_order(self, db):
        rows = run_let(LetQuery((_top_comp(),)), db)
        assert [value for _, value in rows] == [
            "Product",
            "Quality",
            "Research",
            "Sales",
        ]
        assert all(index == FlatIndex(TOP_TAG, 1) for index, _ in rows)

    def test_filter_applies(self, db):
        comp = _top_comp(
            where=PrimNF("=", (VarField("x", "name"), ConstNF("Sales")))
        )
        rows = run_let(LetQuery((comp,)), db)
        assert [value for _, value in rows] == ["Sales"]

    def test_index_prim_counts_filtered_rows(self, db):
        comp = _top_comp(
            where=PrimNF(
                "<>", (VarField("x", "name"), ConstNF("Product"))
            ),
            body_value=LetIndex("a", IndexPrim()),
        )
        rows = run_let(LetQuery((comp,)), db)
        assert [value for _, value in rows] == [
            FlatIndex("a", 1),
            FlatIndex("a", 2),
            FlatIndex("a", 3),
        ]

    def test_record_body(self, db):
        comp = _top_comp(
            body_value=SRecord(
                (("n", VarField("x", "name")), ("i", LetIndex("a", IndexPrim())))
            )
        )
        rows = run_let(LetQuery((comp,)), db)
        assert rows[0][1] == {"n": "Product", "i": FlatIndex("a", 1)}


class TestWithOuter:
    def test_z_projection_and_z_index(self, db):
        outer = OuterSubquery((Generator("d", "departments"),), TRUE_NF)
        comp = LetComp(
            outer=outer,
            generators=(Generator("e", "employees"),),
            where=PrimNF("=", (ZProj(1, "name"), VarField("e", "dept"))),
            tag="b",
            body_outer=LetIndex("a", ZIndex()),
            body_value=VarField("e", "name"),
        )
        rows = run_let(LetQuery((comp,)), db)
        by_department: dict[int, list[str]] = {}
        for index, value in rows:
            by_department.setdefault(index.position, []).append(value)
        # Department 1 = Product (canonical order): Alex and Bert.
        assert sorted(by_department[1]) == ["Alex", "Bert"]
        assert 2 not in by_department  # Quality has no employees

    def test_generatorless_inner_block(self, db):
        outer = OuterSubquery((Generator("d", "departments"),), TRUE_NF)
        comp = LetComp(
            outer=outer,
            generators=(),
            where=TRUE_NF,
            tag="e",
            body_outer=LetIndex("d", ZIndex()),
            body_value=ConstNF("buy"),
        )
        rows = run_let(LetQuery((comp,)), db)
        assert len(rows) == 4  # one per outer row
        assert {index.position for index, _ in rows} == {1, 2, 3, 4}

    def test_zero_generator_outer(self, db):
        outer = OuterSubquery((), TRUE_NF)
        comp = LetComp(
            outer=outer,
            generators=(Generator("d", "departments"),),
            where=TRUE_NF,
            tag="a",
            body_outer=LetIndex(TOP_TAG, ZIndex()),
            body_value=VarField("d", "name"),
        )
        rows = run_let(LetQuery((comp,)), db)
        assert len(rows) == 4
        assert all(index == FlatIndex(TOP_TAG, 1) for index, _ in rows)


class TestErrors:
    def test_z_index_without_outer_rejected_at_construction(self):
        with pytest.raises(LetInsertionError):
            LetComp(
                outer=None,
                generators=(),
                where=TRUE_NF,
                tag="a",
                body_outer=LetIndex("a", ZIndex()),
                body_value=ConstNF(1),
            )

    def test_bad_dynamic_index_value(self, db):
        comp = _top_comp(body_value=LetIndex("a", "bogus"))
        with pytest.raises(LetInsertionError):
            run_let(LetQuery((comp,)), db)
