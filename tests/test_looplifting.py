"""Tests for the loop-lifting baseline (algebra, mini-Pathfinder, runner)."""

from __future__ import annotations

import pytest

from repro.baselines.looplifting.algebra import (
    Attach,
    Derive,
    LoopLiftingError,
    Product,
    ProjectCols,
    RowNum,
    Scan,
    Select,
    UnionAll,
    Unit,
    column_ref,
    plan_size,
)
from repro.baselines.looplifting.compile import compile_levels, parent_path
from repro.baselines.looplifting.pathfinder import (
    deserialise,
    optimise,
    serialise,
)
from repro.baselines.looplifting.runner import (
    LoopLiftingPipeline,
    loop_lift_run,
)
from repro.data import queries
from repro.normalise import normalise
from repro.normalise.normal_form import ConstNF, PrimNF, VarField
from repro.nrc.semantics import evaluate
from repro.nrc.typecheck import infer
from repro.shred.paths import EPSILON, Path
from repro.values import bag_equal


def _scan():
    return Scan("departments", "x1", ("id", "name"))


def _pred(var, label, value):
    return PrimNF("=", (VarField(var, label), ConstNF(value)))


class TestAlgebra:
    def test_scan_columns_prefixed(self):
        assert _scan().columns == ("x1_id", "x1_name")

    def test_product_rejects_overlap(self):
        with pytest.raises(LoopLiftingError):
            Product(_scan(), _scan())

    def test_attach_and_derive_extend_schema(self):
        plan = Attach(_scan(), "branch1", "a")
        plan = Derive(plan, "iter1", column_ref("x1_id"))
        assert plan.columns[-2:] == ("branch1", "iter1")

    def test_rownum_validates_order_columns(self):
        with pytest.raises(LoopLiftingError):
            RowNum(_scan(), "pos", ("nope",))

    def test_union_requires_same_schema(self):
        other = Scan("tasks", "t1", ("id", "employee", "task"))
        with pytest.raises(LoopLiftingError):
            UnionAll(_scan(), other)

    def test_unit_has_no_columns(self):
        assert Unit().columns == ()

    def test_plan_size(self):
        plan = Select(_scan(), _pred("x1", "name", "Sales"))
        assert plan_size(plan) == 2


class TestParentPath:
    def test_epsilon_has_no_parent(self):
        assert parent_path(EPSILON) is None

    def test_one_level(self):
        from repro.shred.paths import DOWN

        assert parent_path(Path((DOWN, "people"))) == EPSILON

    def test_two_levels(self):
        from repro.shred.paths import DOWN

        p = Path((DOWN, "people", DOWN, "tasks"))
        assert parent_path(p) == Path((DOWN, "people"))


class TestPathfinder:
    def test_serialisation_round_trip(self, schema, db):
        nf = normalise(queries.Q6, schema)
        result_type = infer(queries.Q6, schema)
        for level in compile_levels(nf, result_type, schema).values():
            assert deserialise(serialise(level.plan)) == level.plan

    def test_selection_pushed_into_product(self):
        left = _scan()
        right = Scan("employees", "x2", ("id", "dept", "name", "salary"))
        plan = Select(Product(left, right), _pred("x2", "dept", "Sales"))
        optimised = optimise(plan)
        # The conjunct moved onto the employees side of the product.
        assert isinstance(optimised, Product)
        assert any(
            isinstance(node, Select)
            for node in __import__(
                "repro.baselines.looplifting.algebra",
                fromlist=["iter_nodes"],
            ).iter_nodes(optimised.right)
        )

    def test_selection_not_pushed_below_rownum(self):
        numbered = RowNum(_scan(), "pos1", ("x1_id",))
        plan = Select(numbered, _pred("x1", "name", "Sales"))
        optimised = optimise(plan)
        # The Select must stay above the RowNum: numbering is pinned.
        assert isinstance(optimised, Select)
        assert isinstance(optimised.child, RowNum)

    def test_merges_adjacent_selects(self):
        plan = Select(
            Select(_scan(), _pred("x1", "name", "Sales")),
            _pred("x1", "id", 1),
        )
        optimised = optimise(plan)
        selects = [
            node
            for node in __import__(
                "repro.baselines.looplifting.algebra", fromlist=["iter_nodes"]
            ).iter_nodes(optimised)
            if isinstance(node, Select)
        ]
        assert len(selects) == 1

    def test_drops_noop_projection(self):
        plan = ProjectCols(_scan(), _scan().columns)
        assert optimise(plan) == _scan()

    def test_optimise_preserves_results(self, schema, db):
        pipeline = LoopLiftingPipeline(schema, use_pathfinder=True)
        raw_pipeline = LoopLiftingPipeline(schema, use_pathfinder=False)
        for name in ("Q1", "Q4", "Q6"):
            query = queries.NESTED_QUERIES[name]
            assert bag_equal(
                pipeline.run(query, db), raw_pipeline.run(query, db)
            ), name


class TestStructure:
    def test_level_count_is_nesting_degree(self, schema, db):
        compiled = LoopLiftingPipeline(schema).compile(queries.Q6)
        assert compiled.query_count == 3

    def test_inner_levels_embed_parent_rownum(self, schema):
        """The defining pathology: a product *under* a RowNum in every
        non-top level (what Pathfinder cannot undo on Q1/Q6)."""
        from repro.baselines.looplifting.algebra import iter_nodes

        nf = normalise(queries.Q6, schema)
        result_type = infer(queries.Q6, schema)
        levels = compile_levels(nf, result_type, schema)
        for path, level in levels.items():
            if path.is_empty:
                continue
            assert isinstance(level.plan, RowNum)
            has_product_under_rownum = any(
                isinstance(node, Product)
                for node in iter_nodes(level.plan.child)
            )
            assert has_product_under_rownum, str(path)
            # And the embedded parent numbering survives optimisation.
            optimised = optimise(level.plan)
            rownums = [
                node
                for node in iter_nodes(optimised)
                if isinstance(node, RowNum)
            ]
            assert len(rownums) >= 2, str(path)

    def test_sql_orders_by_iter_pos(self, schema):
        compiled = LoopLiftingPipeline(schema).compile(queries.Q3)
        for _, sql in compiled.sql_by_path:
            assert "ORDER BY" in sql  # list semantics maintained


class TestCorrectness:
    @pytest.mark.parametrize(
        "name", sorted({**queries.FLAT_QUERIES, **queries.NESTED_QUERIES})
    )
    def test_matches_semantics_fig3(self, name, schema, db):
        query = {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}[name]
        assert bag_equal(loop_lift_run(query, db), evaluate(query, db)), name

    @pytest.mark.parametrize("name", ["Q1", "Q5", "Q6"])
    def test_matches_semantics_random(self, name, small_random_db):
        query = queries.NESTED_QUERIES[name]
        assert bag_equal(
            loop_lift_run(query, small_random_db),
            evaluate(query, small_random_db),
        )

    def test_empty_database(self, empty_db):
        assert loop_lift_run(queries.Q6, empty_db) == []

    def test_matches_shredding(self, schema, db):
        from repro.pipeline.shredder import shred_run

        for name, query in queries.NESTED_QUERIES.items():
            assert bag_equal(
                loop_lift_run(query, db), shred_run(query, db)
            ), name

    def test_list_order_by_position(self, schema, db):
        """Loop-lifting maintains list semantics: top-level rows arrive in
        position order (deterministic, not just bag-equal)."""
        out1 = loop_lift_run(queries.Q4, db)
        out2 = loop_lift_run(queries.Q4, db)
        assert out1 == out2


class TestDeepComposition:
    def test_deep_union_chain_stays_within_parser_stack(self, schema, db):
        """A 40-arm union chain must render to SQL SQLite can parse.

        Nested derived tables grow the parser stack with composition
        depth (hypothesis found an overflow around 20 levels); the
        renderer hoists wraps and union arms into a flat WITH list, so
        depth stays constant however deep the plan composes.
        """
        from repro.nrc.ast import For, Project, Return, Table, Union, Var

        arm = For(
            var="e",
            source=Table(name="employees"),
            body=Return(element=Project(record=Var(name="e"), label="salary")),
        )
        query = arm
        for _ in range(39):
            query = Union(left=query, right=arm)
        out = loop_lift_run(query, db)
        assert bag_equal(out, evaluate(query, db))
