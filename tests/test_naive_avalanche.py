"""Tests for the naive N+1 evaluator (the §1 query-avalanche behaviour)."""

from __future__ import annotations

import pytest

from repro.backend.executor import ExecutionStats
from repro.baselines.naive import AvalanchePipeline, avalanche_run
from repro.data import queries
from repro.data.generator import generate_organisation
from repro.nrc.semantics import evaluate
from repro.pipeline.shredder import ShreddingPipeline
from repro.values import bag_equal


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_matches_semantics(self, name, schema, db):
        query = queries.NESTED_QUERIES[name]
        assert bag_equal(avalanche_run(query, db), evaluate(query, db)), name

    def test_empty_database(self, empty_db):
        assert avalanche_run(queries.Q4, empty_db) == []

    def test_matches_shredding(self, small_random_db):
        for name in ("Q1", "Q6"):
            query = queries.NESTED_QUERIES[name]
            assert bag_equal(
                avalanche_run(query, small_random_db),
                ShreddingPipeline(small_random_db.schema).run(
                    query, small_random_db
                ),
            )


class TestAvalancheBehaviour:
    """The point of the baseline: query count grows with the data."""

    def test_query_count_grows_with_departments(self, schema):
        compiled = AvalanchePipeline(schema).compile(queries.Q4)
        counts = []
        for departments in (2, 4, 8):
            db = generate_organisation(departments, 3, 2, seed=5)
            stats = ExecutionStats()
            compiled.run(db, stats=stats)
            counts.append(stats.queries)
        assert counts[0] < counts[1] < counts[2]
        # Q4: 1 outer query + one per department.
        assert counts == [3, 5, 9]

    def test_shredding_stays_constant_on_same_data(self, schema):
        pipeline = ShreddingPipeline(schema)
        compiled = pipeline.compile(queries.Q4)
        for departments in (2, 4, 8):
            db = generate_organisation(departments, 3, 2, seed=5)
            stats = ExecutionStats()
            compiled.run(db, stats=stats)
            assert stats.queries == 2  # nesting degree of Q4

    def test_three_level_avalanche(self, db):
        """Q6 on Fig. 3: 1 + 4 (departments) + 5 (people) = 10 queries."""
        stats = ExecutionStats()
        avalanche_run(queries.Q6, db, stats)
        assert stats.queries == 10

    def test_row_traffic_recorded(self, db):
        stats = ExecutionStats()
        avalanche_run(queries.Q1, db, stats)
        assert stats.rows_fetched > 0
        assert len(stats.per_query_rows) == stats.queries
