"""Tests for stage 3 + the full normalisation pipeline (§2.2, App. C.3)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import NotNormalisableError
from repro.nrc import builders as b
from repro.nrc.ast import Var
from repro.nrc.semantics import evaluate
from repro.normalise import normalise, nf_to_term, pretty_nf
from repro.normalise.normal_form import (
    Comprehension,
    EmptyNF,
    NormQuery,
    PrimNF,
    RecordNF,
    TRUE_NF,
    VarField,
    iter_comprehensions,
)
from repro.values import bag_equal


class TestShapes:
    def test_simple_select(self, schema):
        nf = normalise(queries.QF1, schema)
        assert isinstance(nf, NormQuery)
        assert len(nf.comprehensions) == 1
        comp = nf.comprehensions[0]
        assert [g.table for g in comp.generators] == ["employees"]
        assert comp.where != TRUE_NF
        assert isinstance(comp.body, RecordNF)

    def test_join_merges_generators(self, schema):
        nf = normalise(queries.QF2, schema)
        comp = nf.comprehensions[0]
        assert [g.table for g in comp.generators] == ["employees", "tasks"]

    def test_union_splits_comprehensions(self, schema):
        nf = normalise(queries.QF4, schema)
        assert len(nf.comprehensions) == 2

    def test_generators_renamed_apart(self, schema):
        nf = normalise(queries.QF3, schema)
        comp = nf.comprehensions[0]
        names = comp.var_names
        assert len(set(names)) == len(names)
        all_names = [
            g.var
            for comp in iter_comprehensions(nf)
            for g in comp.generators
        ]
        assert len(set(all_names)) == len(all_names)

    def test_empty_probe_becomes_empty_nf(self, schema):
        nf = normalise(queries.QF5, schema)
        comp = nf.comprehensions[0]
        found = _find_empty(comp.where)
        assert found, "anti-join should normalise to an empty() condition"

    def test_table_eta_expansion(self, schema):
        nf = normalise(b.table("departments"), schema)
        comp = nf.comprehensions[0]
        assert [g.table for g in comp.generators] == ["departments"]
        assert isinstance(comp.body, RecordNF)
        assert comp.body.labels == ("id", "name")

    def test_qcomp_structure_matches_paper(self, schema):
        """§2.2/§3: the normal form of Q6 = Q(Qorg) is Qcomp."""
        nf = normalise(queries.Q6, schema)
        # Top level: a single comprehension over departments, tag a.
        assert len(nf.comprehensions) == 1
        top = nf.comprehensions[0]
        assert top.tag == "a"
        assert [g.table for g in top.generators] == ["departments"]
        assert isinstance(top.body, RecordNF)
        assert top.body.labels == ("department", "people")
        people = top.body.field("people")
        assert isinstance(people, NormQuery)
        # people = employees-branch ⊎ contacts-branch, tags b and d.
        assert len(people.comprehensions) == 2
        emp_branch, con_branch = people.comprehensions
        assert emp_branch.tag == "b"
        assert con_branch.tag == "d"
        assert [g.table for g in emp_branch.generators] == ["employees"]
        assert [g.table for g in con_branch.generators] == ["contacts"]
        # Inner task queries, tags c and e.
        emp_tasks = emp_branch.body.field("tasks")
        con_tasks = con_branch.body.field("tasks")
        assert emp_tasks.comprehensions[0].tag == "c"
        assert [g.table for g in emp_tasks.comprehensions[0].generators] == [
            "tasks"
        ]
        assert con_tasks.comprehensions[0].tag == "e"
        assert con_tasks.comprehensions[0].generators == ()

    def test_tags_unique_across_query(self, schema):
        nf = normalise(queries.Q6, schema)
        tags = [comp.tag for comp in iter_comprehensions(nf)]
        assert tags == ["a", "b", "c", "d", "e"]

    def test_higher_order_eliminated_in_q2(self, schema):
        nf = normalise(queries.Q2, schema)
        # Q2 is a flat query: single-level comprehensions with an all/contains
        # condition turned into nested empty() probes.
        for comp in nf.comprehensions:
            assert isinstance(comp.body, RecordNF)
            assert _find_empty(comp.where)


class TestErrors:
    def test_free_variable_rejected(self, schema):
        with pytest.raises(NotNormalisableError):
            normalise(b.ret(Var("x")["f"]), schema)

    def test_lambda_result_rejected(self, schema):
        with pytest.raises(NotNormalisableError):
            normalise(b.ret(b.lam("x", lambda x: x)), schema)


class TestSemanticsPreservation:
    """Theorem 1: normalisation preserves N⟦−⟧."""

    @pytest.mark.parametrize("name", sorted(queries.FLAT_QUERIES))
    def test_flat_queries(self, name, schema, db):
        query = queries.FLAT_QUERIES[name]
        nf = normalise(query, schema)
        assert bag_equal(
            evaluate(query, db), evaluate(nf_to_term(nf), db)
        ), f"{name} changed meaning under normalisation"

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_nested_queries(self, name, schema, db):
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        assert bag_equal(
            evaluate(query, db), evaluate(nf_to_term(nf), db)
        ), f"{name} changed meaning under normalisation"

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_on_random_database(self, name, schema, small_random_db):
        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        assert bag_equal(
            evaluate(query, small_random_db),
            evaluate(nf_to_term(nf), small_random_db),
        )

    def test_on_empty_database(self, schema, empty_db):
        nf = normalise(queries.Q6, schema)
        assert evaluate(nf_to_term(nf), empty_db) == []


class TestPretty:
    def test_pretty_mentions_tags_and_tables(self, schema):
        text = pretty_nf(normalise(queries.Q6, schema))
        for piece in ["return^a", "return^e", "departments", "“buy”"]:
            assert piece in text


def _find_empty(expr) -> bool:
    if isinstance(expr, EmptyNF):
        return True
    if isinstance(expr, PrimNF):
        return any(_find_empty(arg) for arg in expr.args)
    return False
