"""Property tests focused on the normaliser (App. C invariants)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.normalise import (
    hoist_ifs,
    is_c_normal,
    is_h_normal,
    normalise,
    symbolic_eval,
)
from repro.normalise.norm import tag_names
from repro.normalise.normal_form import (
    BaseExpr,
    NormQuery,
    RecordNF,
    iter_comprehensions,
)
from repro.nrc.ast import App, Lam, subterms

from .strategies import queries_with_nesting

SCHEMA = ORGANISATION_SCHEMA
DB = figure3_database()

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(queries_with_nesting())
@_settings
def test_stage1_reaches_c_normal_form(query):
    assert is_c_normal(symbolic_eval(query))


@given(queries_with_nesting())
@_settings
def test_stage1_idempotent(query):
    once = symbolic_eval(query)
    assert symbolic_eval(once) == once


@given(queries_with_nesting())
@_settings
def test_stage1_eliminates_higher_order(query):
    out = symbolic_eval(query)
    assert not any(isinstance(t, (Lam, App)) for t in subterms(out))


@given(queries_with_nesting())
@_settings
def test_stage2_reaches_h_normal_form(query):
    assert is_h_normal(hoist_ifs(symbolic_eval(query)))


@given(queries_with_nesting())
@_settings
def test_normal_form_grammar_invariants(query):
    """The §2.2 grammar: generators over tables, base-term conditions,
    bodies built from base/record/query terms, unique tags, and binders
    distinct along every comprehension *chain* (a binder name may recur in
    sibling branches — they never share a scope — but not in a nested
    comprehension under it, which let-insertion will merge into one
    generator list)."""
    nf = normalise(query, SCHEMA)
    assert isinstance(nf, NormQuery)
    seen_tags: list[str] = []

    def walk_query(q: NormQuery, inherited: frozenset[str]) -> None:
        for comp in q.comprehensions:
            assert comp.tag is not None
            seen_tags.append(comp.tag)
            scope = set(inherited)
            for generator in comp.generators:
                assert generator.table in SCHEMA
                assert generator.var not in scope, "binder reused in chain"
                scope.add(generator.var)
            assert isinstance(comp.where, BaseExpr)
            assert isinstance(comp.body, (BaseExpr, RecordNF, NormQuery))
            walk_term(comp.body, frozenset(scope))

    def walk_term(term, inherited: frozenset[str]) -> None:
        if isinstance(term, NormQuery):
            walk_query(term, inherited)
        elif isinstance(term, RecordNF):
            for _, value in term.fields:
                walk_term(value, inherited)

    walk_query(nf, frozenset())
    assert len(set(seen_tags)) == len(seen_tags)


@given(queries_with_nesting(max_depth=1))
@_settings
def test_tags_assigned_in_traversal_order(query):
    """Tags are drawn from one DFS-preorder stream; subqueries under
    `empty` consume names too (invisible to iter_comprehensions), so the
    visible sequence is strictly increasing rather than contiguous."""
    nf = normalise(query, SCHEMA)
    stream = tag_names()
    rank = {next(stream): i for i in range(200)}
    ranks = [rank[comp.tag] for comp in iter_comprehensions(nf)]
    assert ranks == sorted(ranks)
    assert len(set(ranks)) == len(ranks)
