"""The metrics registry and Prometheus exposition, and the bounded
session-stats model they ride on.

Three layers of claims:

* registry semantics — counters only go up, histograms are fixed-bucket
  (bounded memory however long the server runs), registration is
  idempotent, label schemas are enforced;
* exposition — ``render_prometheus`` emits valid 0.0.4 text that our own
  strict parser round-trips, byte-stable for a given state;
* determinism — counters driven from many threads (the parallel engine,
  a session hammer) land *exactly*, mirroring ``session.stats``.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import connect
from repro.backend.executor import ExecutionStats
from repro.data.organisation import figure3_database
from repro.data.queries import NESTED_QUERIES
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)

QUERY_NAMES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]


class TestRegistrySemantics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", "ticks")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "queue depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3.0
        live = registry.gauge("live", "pulled at render", callback=lambda: 7)
        assert live.value == 7.0
        with pytest.raises(ValueError):
            registry.gauge("bad", "x", labels=("a",), callback=lambda: 0)

    def test_histogram_buckets_are_fixed_and_cumulative(self):
        registry = MetricsRegistry()
        histo = registry.histogram("ms", "latency", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.9, 5.0, 50.0, 5000.0):
            histo._solo().observe(value)
        snap = histo._solo().snapshot()
        assert snap["buckets"] == [(1.0, 2), (10.0, 3), (100.0, 4)]
        assert snap["inf"] == 5
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5056.4)
        # Memory is the bucket tuple, never a sample list.
        assert not hasattr(histo._solo(), "__dict__")

    def test_histogram_quantile_is_bucket_resolution(self):
        registry = MetricsRegistry()
        histo = registry.histogram("ms", "latency", buckets=(1.0, 10.0, 100.0))
        for value in [0.5] * 50 + [5.0] * 45 + [50.0] * 5:
            histo.observe(value)
        assert histo.quantile(0.50) == 1.0
        assert histo.quantile(0.95) == 10.0
        assert histo.quantile(0.99) == 100.0

    def test_default_buckets_are_log_scaled_and_bounded(self):
        assert len(DEFAULT_LATENCY_BUCKETS_MS) == 17
        assert DEFAULT_LATENCY_BUCKETS_MS[0] == 0.25
        ratios = {
            round(b / a, 6)
            for a, b in zip(
                DEFAULT_LATENCY_BUCKETS_MS, DEFAULT_LATENCY_BUCKETS_MS[1:]
            )
        }
        assert ratios == {2.0}

    def test_registration_is_idempotent_but_schema_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "hits")
        again = registry.counter("hits_total", "hits")
        assert first is again
        with pytest.raises(ValueError):
            registry.gauge("hits_total", "now a gauge")
        with pytest.raises(ValueError):
            registry.counter("hits_total", "new labels", labels=("op",))

    def test_labels_enforced_and_children_shared(self):
        registry = MetricsRegistry()
        family = registry.counter("ops_total", "ops", labels=("op",))
        family.labels(op="execute").inc()
        family.labels(op="execute").inc()
        family.labels(op="ping").inc()
        assert family.labels(op="execute").value == 2.0
        with pytest.raises(ValueError):
            family.labels(verb="execute")
        with pytest.raises(ValueError):
            family.inc()  # labelled family has no solo child


class TestExposition:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests", labels=("op",))
        registry.get("requests_total").labels(op="execute").inc(3)
        registry.get("requests_total").labels(op="ping").inc()
        registry.gauge("pending", "in flight").set(2)
        histo = registry.histogram("latency_ms", "ms", buckets=(1.0, 8.0))
        for value in (0.5, 4.0, 90.0):
            histo.observe(value)
        return registry

    def test_render_parses_and_round_trips(self):
        registry = self._populated()
        text = render_prometheus(registry)
        parsed = parse_prometheus(text)
        assert parsed["repro_requests_total"]["type"] == "counter"
        samples = parsed["repro_requests_total"]["samples"]
        assert samples[("repro_requests_total", (("op", "execute"),))] == 3.0
        assert samples[("repro_requests_total", (("op", "ping"),))] == 1.0
        assert parsed["repro_pending"]["samples"][("repro_pending", ())] == 2.0
        histo = parsed["repro_latency_ms"]
        assert histo["type"] == "histogram"
        assert histo["samples"][("repro_latency_ms_bucket", (("le", "1"),))] == 1.0
        assert histo["samples"][("repro_latency_ms_bucket", (("le", "8"),))] == 2.0
        assert histo["samples"][("repro_latency_ms_bucket", (("le", "+Inf"),))] == 3.0
        assert histo["samples"][("repro_latency_ms_count", ())] == 3.0
        assert histo["samples"][("repro_latency_ms_sum", ())] == pytest.approx(94.5)

    def test_exposition_is_byte_stable(self):
        # Same logical state reached in different orders renders the same
        # bytes — what the sharded determinism tests diff against.
        left, right = self._populated(), MetricsRegistry()
        histo = right.histogram("latency_ms", "ms", buckets=(1.0, 8.0))
        right.gauge("pending", "in flight").set(2)
        requests = right.counter("requests_total", "requests", labels=("op",))
        requests.labels(op="ping").inc()
        for value in (90.0, 0.5, 4.0):
            histo.observe(value)
        requests.labels(op="execute").inc(3)
        assert render_prometheus(left) == render_prometheus(right)
        assert render_prometheus(left) == render_prometheus(left)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("odd_total", "odd", labels=("path",))
        family.labels(path='a"b\\c\nd').inc()
        parsed = parse_prometheus(render_prometheus(registry))
        ((_name, labels),) = parsed["repro_odd_total"]["samples"]
        assert labels == (("path", 'a"b\\c\nd'),)

    def test_help_lines_and_types_present_for_every_family(self):
        text = render_prometheus(self._populated())
        for family in ("repro_requests_total", "repro_pending", "repro_latency_ms"):
            assert f"# HELP {family} " in text
            assert f"# TYPE {family} " in text

    def test_parser_rejects_malformed_exposition(self):
        with pytest.raises(ValueError):
            parse_prometheus("orphan_sample 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x summary\nx 1\n")
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x counter\nx notanumber\n")

    def test_hammered_counters_land_exactly(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", "ticks", labels=("who",))
        histo = registry.histogram("ms", "ms", buckets=(1.0, 2.0))
        threads = 8
        per_thread = 500
        barrier = threading.Barrier(threads)

        def worker(slot: int) -> None:
            barrier.wait(timeout=30)
            child = counter.labels(who=str(slot % 2))
            for _ in range(per_thread):
                child.inc()
                histo.observe(0.5)

        workers = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60)
        total = sum(
            child.value for _key, child in counter.children()
        )
        assert total == threads * per_thread
        assert histo._solo().snapshot()["count"] == threads * per_thread


class TestStatsCompaction:
    """Satellite (a): session-level stats stay bounded; per-run stats are
    never folded."""

    def _stats(self, samples: int) -> ExecutionStats:
        stats = ExecutionStats()
        for index in range(samples):
            stats.record(rows=index, millis=float(index))
        return stats

    def test_compact_folds_oldest_samples(self):
        stats = self._stats(10)
        folded = stats.compact(4)
        assert folded == 6
        assert stats.per_query_rows == [6, 7, 8, 9]
        assert stats.folded_samples == 6
        assert stats.folded_rows == sum(range(6))
        assert stats.folded_millis == pytest.approx(sum(range(6)))

    def test_compact_is_noop_under_cap(self):
        stats = self._stats(4)
        assert stats.compact(4) == 0
        assert stats.compact(100) == 0
        assert stats.folded_samples == 0
        assert len(stats.per_query_rows) == 4

    def test_totals_survive_compaction(self):
        stats = self._stats(10)
        before_millis = stats.total_millis
        before_rows = stats.rows_fetched
        stats.compact(3)
        assert stats.total_millis == pytest.approx(before_millis)
        assert stats.rows_fetched == before_rows

    def test_merge_carries_folded_counts(self):
        left = self._stats(10)
        left.compact(2)
        right = self._stats(5)
        right.compact(1)
        target = ExecutionStats()
        target.merge(left)
        target.merge(right)
        assert target.folded_samples == 8 + 4
        assert len(target.per_query_millis) == 3
        assert target.queries == 15

    def test_session_stats_stay_bounded(self, monkeypatch):
        import repro.api.session as session_module

        monkeypatch.setattr(session_module, "STATS_SAMPLE_CAP", 5)
        session = connect(figure3_database())
        for _ in range(4):
            session.run(NESTED_QUERIES["Q6"])  # 3 statements per run
        assert session.stats.queries == 12
        assert len(session.stats.per_query_millis) <= 5
        assert (
            len(session.stats.per_query_millis)
            + session.stats.folded_samples
            == session.stats.queries
        )
        # The per-run stats a caller sees keep their full sample lists.
        result = session.run(NESTED_QUERIES["Q6"])
        assert len(result.stats.per_query_millis) == result.stats.queries


class TestSessionMetrics:
    """Satellites (b)+(d): the registry mirrors ``session.stats`` exactly,
    whatever engine or thread count produced the runs."""

    def _families(self, registry: MetricsRegistry, session) -> dict:
        return {
            "statements": registry.get("statements_total").value,
            "rows": registry.get("rows_fetched_total").value,
            "observed": registry.get("statement_latency_ms")
            ._solo()
            .snapshot()["count"],
            "hits": registry.get("plan_cache_hits_total").value,
            "misses": registry.get("plan_cache_misses_total").value,
        }

    def test_metrics_mirror_stats_exactly(self):
        registry = MetricsRegistry()
        session = connect(figure3_database(), metrics=registry)
        for name in QUERY_NAMES:
            session.run(NESTED_QUERIES[name])
            session.run(NESTED_QUERIES[name])
        seen = self._families(registry, session)
        assert seen["statements"] == session.stats.queries
        assert seen["rows"] == session.stats.rows_fetched
        assert seen["observed"] == session.stats.queries
        assert seen["hits"] == session.stats.cache_hits
        assert seen["misses"] == session.stats.cache_misses

    def test_rules_fired_reach_the_registry(self):
        from repro.sql.codegen import SqlOptions

        registry = MetricsRegistry()
        session = connect(
            figure3_database(),
            options=SqlOptions(optimize=True),
            metrics=registry,
            cache=False,
        )
        session.run(NESTED_QUERIES["Q6"])
        family = registry.get("rules_fired_total")
        fired = {
            key[0]: child.value for key, child in family.children()
        }
        assert fired == dict(session.stats.rules_fired)
        assert fired  # Q6 with the optimizer on fires at least one rule

    def test_parallel_engine_counts_match_batched(self):
        results = {}
        for engine in ("batched", "parallel"):
            registry = MetricsRegistry()
            session = connect(figure3_database(), metrics=registry)
            for name in QUERY_NAMES:
                session.run(NESTED_QUERIES[name], engine=engine)
            results[engine] = (
                registry.get("statements_total").value,
                registry.get("rows_fetched_total").value,
                registry.get("statement_latency_ms")._solo().snapshot()["count"],
            )
        assert results["parallel"] == results["batched"]

    def test_hammered_session_metrics_are_exact(self):
        registry = MetricsRegistry()
        session = connect(figure3_database(), metrics=registry)
        threads = 6
        runs_per_thread = 8
        barrier = threading.Barrier(threads)
        failures: list = []

        def worker(slot: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i in range(runs_per_thread):
                    name = QUERY_NAMES[(slot + i) % len(QUERY_NAMES)]
                    session.run(NESTED_QUERIES[name], engine="batched")
            except Exception as error:  # noqa: BLE001
                failures.append(repr(error))

        workers = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=120)
        assert not failures, failures
        assert (
            registry.get("statements_total").value == session.stats.queries
        )
        assert (
            registry.get("rows_fetched_total").value
            == session.stats.rows_fetched
        )
        assert (
            registry.get("statement_latency_ms")._solo().snapshot()["count"]
            == session.stats.queries
        )
