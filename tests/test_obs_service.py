"""Observability over the wire: the ``metrics`` op, ``trace_id``
propagation, the HTTP exposition endpoint, shard fan-out attribution and
supervisor event counters.

Protocol v1.3 additions under test:

* every server keeps a :class:`MetricsRegistry` and answers ``{"op":
  "metrics"}`` with Prometheus text exposition, in-band, on both the
  blocking and asyncio clients — counters are *exact* (N executes → N);
* any request may carry a ``trace_id`` (≤64 chars); the response echoes
  it, executes additionally report ``server_millis``, and the sharded
  client stamps its tracer's id on every sub-request while attaching
  per-shard spans with shard/replica attribution post-join;
* ``--metrics-port`` exposes the same registry over HTTP ``GET
  /metrics`` (:class:`MetricsHTTPServer`), parsed and asserted here.
"""

from __future__ import annotations

import urllib.request

import pytest

from repro.api import connect
from repro.data.organisation import (
    figure3_database,
    organisation_placement,
)
from repro.errors import ServiceError
from repro.obs import (
    MetricsHTTPServer,
    MetricsRegistry,
    Tracer,
    parse_prometheus,
)
from repro.service import (
    AsyncServiceClient,
    ServiceClient,
    paper_registry,
    serve_in_background,
)
from repro.service.resilience import CircuitBreaker
from repro.shard import ShardedDatabase, ShardedServiceClient
from repro.shard.supervisor import Supervisor
from repro.values import bag_equal

PLACEMENT = organisation_placement()
REGISTRY = paper_registry()
SHARDS = 2


def _sample(exposition: str, family: str, sample: str, **labels) -> float:
    parsed = parse_prometheus(exposition)
    key = (sample, tuple(sorted((k, str(v)) for k, v in labels.items())))
    return parsed[family]["samples"][key]


class TestMetricsOp:
    def test_exact_counters_over_the_blocking_client(self):
        session = connect(figure3_database())
        with serve_in_background(session, REGISTRY, pool_size=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                for _ in range(3):
                    client.execute("Q1")
                client.ping()
                exposition = client.metrics()
        assert _sample(
            exposition,
            "repro_requests_total",
            "repro_requests_total",
            op="execute",
        ) == 3.0
        assert _sample(
            exposition,
            "repro_requests_total",
            "repro_requests_total",
            op="ping",
        ) == 1.0
        # The session mirrors into the same registry: statement counts and
        # latency observations line up with the three executes.
        statements = _sample(
            exposition, "repro_statements_total", "repro_statements_total"
        )
        assert statements == session.stats.queries
        observed = _sample(
            exposition,
            "repro_statement_latency_ms",
            "repro_statement_latency_ms_count",
        )
        assert observed == statements

    def test_metrics_op_over_the_async_client(self):
        import asyncio

        session = connect(figure3_database())
        with serve_in_background(session, REGISTRY, pool_size=2) as handle:

            async def scenario() -> str:
                client = await AsyncServiceClient(
                    handle.host, handle.port
                ).connect()
                try:
                    await client.execute("Q2")
                    return await client.metrics()
                finally:
                    await client.close()

            exposition = asyncio.run(scenario())
        assert _sample(
            exposition,
            "repro_requests_total",
            "repro_requests_total",
            op="execute",
        ) == 1.0

    def test_saturation_gauges_present(self):
        session = connect(figure3_database())
        with serve_in_background(
            session, REGISTRY, pool_size=2, max_pending=7
        ) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                exposition = client.metrics()
        parsed = parse_prometheus(exposition)
        assert (
            parsed["repro_admission_limit"]["samples"][
                ("repro_admission_limit", ())
            ]
            == 7.0
        )
        assert parsed["repro_lease_pool_size"]["samples"][
            ("repro_lease_pool_size", ())
        ] == 2.0
        assert ("repro_pending_requests", ()) in parsed[
            "repro_pending_requests"
        ]["samples"]

    def test_shed_and_error_counters_wired(self):
        session = connect(figure3_database())
        with serve_in_background(session, REGISTRY, pool_size=1) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError):
                    client.execute("no_such_query")
                exposition = client.metrics()
        assert _sample(
            exposition,
            "repro_request_errors_total",
            "repro_request_errors_total",
        ) == 1.0
        assert _sample(
            exposition,
            "repro_requests_shed_total",
            "repro_requests_shed_total",
        ) == 0.0


class TestTraceIdPropagation:
    def test_execute_echoes_trace_id_and_reports_server_millis(self):
        session = connect(figure3_database())
        with serve_in_background(session, REGISTRY, pool_size=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                response = client.execute_full("Q1", trace_id="abc123")
                plain = client.execute_full("Q1")
        assert response["trace_id"] == "abc123"
        assert response["server_millis"] >= 0.0
        assert "trace_id" not in plain

    def test_malformed_trace_ids_are_rejected(self):
        session = connect(figure3_database())
        with serve_in_background(session, REGISTRY, pool_size=2) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                with pytest.raises(ServiceError):
                    client.execute_full("Q1", trace_id="x" * 65)
                # The connection survives the error frame.
                assert client.execute("Q1")


class TestHTTPExposition:
    def test_get_metrics_parses_and_matches_inband(self):
        session = connect(figure3_database())
        with serve_in_background(session, REGISTRY, pool_size=2) as handle:
            exporter = MetricsHTTPServer(handle.server.metrics)
            try:
                with ServiceClient(handle.host, handle.port) as client:
                    client.execute("Q3")
                    inband = client.metrics()
                with urllib.request.urlopen(exporter.url, timeout=10) as r:
                    assert r.status == 200
                    assert r.headers["Content-Type"].startswith("text/plain")
                    body = r.read().decode("utf-8")
            finally:
                exporter.close()
        assert _sample(
            body,
            "repro_requests_total",
            "repro_requests_total",
            op="execute",
        ) == 1.0
        # Same registry behind both surfaces: the execute counter agrees
        # (later ops — the metrics scrape itself, the close — move other
        # children between the two snapshots, but not this one).
        assert _sample(
            inband,
            "repro_requests_total",
            "repro_requests_total",
            op="execute",
        ) == 1.0
        assert parse_prometheus(body).keys() == parse_prometheus(inband).keys()

    def test_unknown_paths_404(self):
        registry = MetricsRegistry()
        exporter = MetricsHTTPServer(registry)
        try:
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    exporter.url.replace("/metrics", "/other"), timeout=10
                )
        finally:
            exporter.close()


@pytest.fixture(scope="module")
def fleet():
    """2 partition shards + full-copy fallback, real sockets."""
    sdb = ShardedDatabase(figure3_database(), PLACEMENT, SHARDS)
    handles = [
        serve_in_background(
            connect(db),
            REGISTRY,
            pool_size=2,
            shard_label=f"{index}/{SHARDS}",
        )
        for index, db in enumerate(sdb.shards)
    ]
    fallback = serve_in_background(
        connect(sdb.full), REGISTRY, pool_size=2, shard_label=f"full/{SHARDS}"
    )
    yield handles, fallback
    for handle in handles + [fallback]:
        handle.stop()


def _fleet_client(fleet, **kwargs) -> ShardedServiceClient:
    handles, fallback = fleet
    return ShardedServiceClient(
        [(h.host, h.port) for h in handles],
        (fallback.host, fallback.port),
        placement=PLACEMENT,
        registry=REGISTRY,
        schema=figure3_database().schema,
        timeout=10,
        **kwargs,
    )


class TestShardedAttribution:
    def test_fanout_spans_carry_shard_labels_and_server_millis(self, fleet):
        expected = connect(figure3_database()).run(
            REGISTRY.lookup("Q1").term
        )
        tracer = Tracer(trace_id="fanout01")
        with _fleet_client(fleet) as client:
            response = client.execute_full("Q1", tracer=tracer)
        assert bag_equal(response["rows"], expected.value)
        (route,) = tracer.spans
        assert route.name == "route"
        assert route.attributes["mode"] == "fanout"
        shards = [s for s in route.children if s.name == "shard"]
        # Post-join attachment in shard order, whatever the race did.
        assert [s.attributes["shard"] for s in shards] == [
            f"0/{SHARDS}",
            f"1/{SHARDS}",
        ]
        for span in shards:
            assert span.duration_ms > 0.0
            assert span.attributes["server_millis"] >= 0.0
            assert span.duration_ms >= span.attributes["server_millis"]
            assert span.attributes["attempts"] == 1

    def test_routed_query_traces_exactly_one_shard(self, fleet):
        tracer = Tracer()
        with _fleet_client(fleet) as client:
            response = client.execute_full(
                "dept_staff", {"dept": "quality"}, tracer=tracer
            )
        assert response["route"].startswith("routed")
        (route,) = tracer.spans
        shards = [s for s in route.children if s.name == "shard"]
        assert len(shards) == 1
        assert shards[0].attributes["shard"] in (
            f"0/{SHARDS}",
            f"1/{SHARDS}",
        )

    def test_subrequest_counters_mirror_fanout_exactly(self, fleet):
        metrics = MetricsRegistry()
        with _fleet_client(fleet, metrics=metrics) as client:
            for _ in range(4):
                client.execute("Q1")
        family = metrics.get("shard_subrequests_total")
        counts = {
            key[0]: child.value for key, child in family.children()
        }
        assert counts == {f"0/{SHARDS}": 4.0, f"1/{SHARDS}": 4.0}
        histo = metrics.get("shard_subrequest_latency_ms")
        observed = sum(
            child.snapshot()["count"] for _key, child in histo.children()
        )
        assert observed == 8

    def test_server_side_trace_ids_correlate(self, fleet):
        # Each shard server validates + echoes the stamped id; a fresh
        # fleet-wide execute with a tracer must not error out anywhere.
        tracer = Tracer(trace_id="wire-correlation-id")
        with _fleet_client(fleet) as client:
            response = client.execute_full("Q2", tracer=tracer)
        assert response["ok"]
        assert len(tracer.spans) == 1


class TestBreakerTransitionMetrics:
    def test_transitions_counted_per_endpoint(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "breaker_transitions_total",
            "transitions",
            labels=("endpoint", "state"),
        )
        breaker = CircuitBreaker(
            failure_threshold=2,
            reset_timeout=0.0,
            on_transition=lambda state: family.labels(
                endpoint="0/2", state=state
            ).inc(),
        )
        breaker.record_failure()
        assert family.children() == [] or all(
            child.value == 0 for _k, child in family.children()
        )
        breaker.record_failure()  # trips
        assert family.labels(endpoint="0/2", state="open").value == 1.0
        assert breaker.allow()  # reset_timeout 0 → straight to half-open
        breaker.record_success()
        assert family.labels(endpoint="0/2", state="closed").value == 1.0
        breaker.record_success()  # already closed: no extra transition
        assert family.labels(endpoint="0/2", state="closed").value == 1.0

    def test_sharded_client_subscribes_every_endpoint(self, fleet):
        metrics = MetricsRegistry()
        with _fleet_client(fleet, metrics=metrics) as client:
            labels = {
                client.replica_label(i, r)
                for i, group in enumerate(client._groups)
                for r in range(len(group))
            } | {client.shard_label(None)}
            for breaker in client.breakers:
                assert breaker.on_transition is not None
            # Fire one transition artificially; it lands under a fleet
            # endpoint label.
            client.breakers[0].on_transition("open")
        family = metrics.get("breaker_transitions_total")
        ((key, child),) = family.children()
        assert key[0] in labels
        assert key[1] == "open"
        assert child.value == 1.0


class StubProcess:
    """Pretends to be a ShardProcess: dies and restarts on command."""

    def __init__(self, label: str, fail_starts: int = 0) -> None:
        self.label = label
        self.port = 0
        self.alive = True
        self.fail_starts = fail_starts

    def poll(self):
        return None if self.alive else -9

    def start(self) -> None:
        if self.fail_starts > 0:
            self.fail_starts -= 1
            raise RuntimeError("came up dead")
        self.alive = True

    def kill(self) -> None:
        self.alive = False


class TestSupervisorMetrics:
    def _supervised(self, stub, **kwargs):
        now = [0.0]
        registry = MetricsRegistry()
        supervisor = Supervisor(
            [stub],
            clock=lambda: now[0],
            backoff_base=1.0,
            crash_loop_threshold=3,
            crash_loop_window=100.0,
            metrics=registry,
            **kwargs,
        )
        return supervisor, now, registry

    def test_death_and_restart_counted(self):
        stub = StubProcess("0/2")
        supervisor, now, registry = self._supervised(stub)
        stub.kill()
        supervisor.poll()  # observes the death, schedules the restart
        now[0] = 1.0
        supervisor.poll()  # executes the restart
        deaths = registry.get("supervisor_deaths_total")
        restarts = registry.get("supervisor_restarts_total")
        assert deaths.labels(shard="0/2").value == 1.0
        assert restarts.labels(shard="0/2").value == 1.0
        assert (
            registry.get("supervisor_failed_shards").value == 0.0
        )

    def test_crash_loop_flips_the_failed_gauge(self):
        stub = StubProcess("1/2")
        supervisor, now, registry = self._supervised(stub)
        for round_index in range(3):
            stub.kill()
            supervisor.poll()
            now[0] += 10.0
            supervisor.poll()
        assert (
            registry.get("supervisor_crash_loops_total")
            .labels(shard="1/2")
            .value
            == 1.0
        )
        assert registry.get("supervisor_failed_shards").value == 1.0

    def test_failed_restart_counted(self):
        stub = StubProcess("0/1", fail_starts=1)
        supervisor, now, registry = self._supervised(stub)
        stub.kill()
        supervisor.poll()
        now[0] = 1.0
        supervisor.poll()  # start raises: restart-failed
        assert (
            registry.get("supervisor_restart_failures_total")
            .labels(shard="0/1")
            .value
            == 1.0
        )
