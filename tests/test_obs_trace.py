"""Trace spans across the compile/execute pipeline.

The tentpole acceptance claim: a traced Q1–Q6 run produces one nested
span tree per query — compile stages on a cold compile, per-rule
optimizer timings, one ``statement`` span per flat query with ``sql``
vs ``decode`` split, ``stitch`` — and the stage spans **sum to within
the recorded total wall time** (children never exceed their parent).

Plus the tracer's own contract: clock-injectable exact durations,
deterministic post-hoc recording (the parallel engine attaches worker
measurements in package order after joining), JSON export, rendering.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.data.organisation import figure3_database
from repro.data.queries import NESTED_QUERIES
from repro.obs import Span, Tracer, render_trace
from repro.pipeline.plan_cache import PlanCache

QUERY_NAMES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]


class FakeClock:
    """A settable seconds clock for exact-duration assertions."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _walk(span: Span):
    yield span
    for child in span.children:
        yield from _walk(child)


class TestTracerContract:
    def test_spans_nest_and_stamp_exact_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, trace_id="t1")
        with tracer.span("outer") as outer:
            clock.advance(0.010)
            with tracer.span("inner", step=1) as inner:
                clock.advance(0.005)
            clock.advance(0.001)
        assert tracer.root is outer
        assert outer.duration_ms == pytest.approx(16.0)
        assert inner.duration_ms == pytest.approx(5.0)
        assert outer.children == [inner]
        assert inner.start_ms == pytest.approx(10.0)
        assert inner.attributes == {"step": 1}
        assert tracer.current() is None

    def test_post_hoc_record_attaches_at_current_position(self):
        tracer = Tracer(trace_id="t2")
        with tracer.span("execute"):
            first = tracer.record("statement", 1.5, index=0)
            first.record("sql", 1.25)
            first.record("decode", 0.25)
            tracer.record("statement", 2.0, index=1)
        (execute,) = tracer.spans
        assert [child.name for child in execute.children] == [
            "statement",
            "statement",
        ]
        assert execute.children[0].children[0].name == "sql"
        # Post-hoc spans carry no origin offset — only the duration is
        # meaningful once the measurement crossed a thread.
        assert execute.children[0].start_ms is None

    def test_record_outside_any_span_starts_a_root(self):
        tracer = Tracer(trace_id="t3")
        tracer.record("orphan", 4.0)
        assert [span.name for span in tracer.spans] == ["orphan"]

    def test_to_dict_round_trips_through_json(self):
        import json

        clock = FakeClock()
        tracer = Tracer(clock=clock, trace_id="deadbeef")
        with tracer.span("query", engine="batched"):
            clock.advance(0.0021234)
            tracer.record("statement", 1.06789, rows=5)
        payload = json.loads(json.dumps(tracer.to_dict()))
        assert payload["trace_id"] == "deadbeef"
        (root,) = payload["spans"]
        assert root["name"] == "query"
        assert root["duration_ms"] == 2.123  # rounded to 3 decimals
        assert root["attributes"] == {"engine": "batched"}
        assert root["children"][0]["attributes"] == {"rows": 5}
        assert "start_ms" not in root["children"][0]

    def test_render_is_an_indented_tree(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, trace_id="cafe")
        with tracer.span("query"):
            with tracer.span("compile"):
                clock.advance(0.001)
        text = render_trace(tracer)
        lines = text.splitlines()
        assert lines[0] == "trace cafe"
        assert lines[1].startswith("- query")
        assert lines[2].startswith("  - compile  1.000ms")


class TestTracedPipeline:
    """The acceptance criterion, per paper query and per engine."""

    @pytest.fixture(scope="class")
    def db(self):
        return figure3_database()

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_stage_spans_sum_within_total(self, db, name):
        session = connect(db, cache=False)
        result = session.query(NESTED_QUERIES[name]).run(trace=True)
        root = result.trace.root
        assert root.name == "query"
        stages = [span.name for span in root.children]
        assert stages[0] == "compile"
        assert "execute" in stages
        assert stages[-1] == "stitch"
        # Children account for less wall time than their parent measured,
        # at every level of the tree.
        for span in _walk(root):
            if span.children:
                child_sum = sum(c.duration_ms for c in span.children)
                assert child_sum <= span.duration_ms + 1e-6, span.name

    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_every_flat_query_gets_a_statement_span(self, db, name):
        session = connect(db, cache=False)
        prepared = session.query(NESTED_QUERIES[name])
        result = prepared.run(trace=True)
        root = result.trace.root
        (execute,) = [s for s in root.children if s.name == "execute"]
        statements = [c for c in execute.children if c.name == "statement"]
        assert len(statements) == prepared.query_count
        assert sum(
            span.attributes["rows"] for span in statements
        ) == result.stats.rows_fetched
        for span in statements:
            assert [c.name for c in span.children] == ["sql", "decode"]

    def test_compile_stages_on_cold_compile_only(self, db):
        session = connect(db, cache=PlanCache())
        cold = session.query(NESTED_QUERIES["Q6"]).run(trace=True)
        (compile_span,) = [
            s for s in cold.trace.root.children if s.name == "compile"
        ]
        names = [c.name for c in compile_span.children]
        assert names[0] == "normalise"
        assert names[1] == "shred"
        assert names.count("codegen") == 3  # one per shredded query
        assert compile_span.attributes["cached"] is False
        # A second prepared object hits the plan cache: no stage children.
        warm = session.query(NESTED_QUERIES["Q6"]).run(trace=True)
        (warm_compile,) = [
            s for s in warm.trace.root.children if s.name == "compile"
        ]
        assert warm_compile.attributes["cached"] is True
        assert warm_compile.children == []

    def test_optimizer_rules_traced_per_codegen(self, db):
        from repro.sql.codegen import SqlOptions

        session = connect(db, options=SqlOptions(optimize=True), cache=False)
        result = session.query(NESTED_QUERIES["Q6"]).run(trace=True)
        optimize_spans = [
            span
            for span in _walk(result.trace.root)
            if span.name == "optimize"
        ]
        assert optimize_spans  # one per codegen
        fired = {
            child.name
            for span in optimize_spans
            for child in span.children
            if child.attributes.get("fired")
        }
        # Compile-side rule counts land in the session carrier (the run's
        # stats only see execution); the traced fired set must match it.
        assert result is not None
        assert fired == set(session.stats.rules_fired)

    def test_parallel_engine_spans_in_package_order(self, db):
        session = connect(db, cache=False)
        result = session.query(NESTED_QUERIES["Q6"]).run(
            trace=True, engine="parallel"
        )
        (execute,) = [
            s for s in result.trace.root.children if s.name == "execute"
        ]
        assert execute.attributes["engine"] == "parallel"
        statements = [c for c in execute.children if c.name == "statement"]
        # Workers raced, but the coordinator attached in package order.
        assert [s.attributes["index"] for s in statements] == [0, 1, 2]

    def test_untraced_run_allocates_no_tracer(self, db):
        session = connect(db, cache=False)
        result = session.query(NESTED_QUERIES["Q1"]).run()
        assert result.trace is None

    def test_existing_tracer_accepted_and_id_kept(self, db):
        session = connect(db, cache=False)
        tracer = Tracer(trace_id="feedface")
        result = session.query(NESTED_QUERIES["Q2"]).run(trace=tracer)
        assert result.trace is tracer
        assert result.trace.trace_id == "feedface"


class TestExplainSurface:
    def test_explain_trace_appends_rendered_tree(self):
        session = connect(figure3_database(), cache=False)
        report = session.query(NESTED_QUERIES["Q3"]).explain(trace=True)
        assert "trace " in report
        assert "- query" in report
        assert "- statement" in report

    def test_explain_json_carries_the_span_tree(self):
        import json

        session = connect(figure3_database(), cache=False)
        payload = session.query(NESTED_QUERIES["Q4"]).explain(
            trace=True, json=True
        )
        assert json.dumps(payload)  # fully serialisable
        assert payload["trace"]["spans"][0]["name"] == "query"
        assert payload["statement_count"] == len(payload["statements"])
        assert {d["severity"] for d in payload["diagnostics"]} <= {
            "info",
            "warning",
            "error",
        }

    def test_explain_json_without_trace_omits_the_key(self):
        session = connect(figure3_database(), cache=False)
        payload = session.query(NESTED_QUERIES["Q1"]).explain(json=True)
        assert "trace" not in payload
        assert payload["engine"]["resolved"] in (
            "per-path",
            "batched",
            "parallel",
        )
