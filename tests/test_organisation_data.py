"""Tests pinning the Fig. 3 sample instance to the paper."""

from __future__ import annotations

from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    empty_database,
    figure3_database,
)


class TestSchema:
    def test_tables(self):
        assert ORGANISATION_SCHEMA.table_names == (
            "departments",
            "employees",
            "tasks",
            "contacts",
        )

    def test_id_keys_everywhere(self):
        for table in ORGANISATION_SCHEMA.tables:
            assert table.key == ("id",)

    def test_row_types(self):
        from repro.nrc.types import BOOL, INT, STRING

        employees = ORGANISATION_SCHEMA.table("employees")
        assert dict(employees.columns) == {
            "id": INT,
            "dept": STRING,
            "name": STRING,
            "salary": INT,
        }
        contacts = ORGANISATION_SCHEMA.table("contacts")
        assert contacts.column_type("client") == BOOL


class TestFigure3Instance:
    def test_row_counts(self):
        db = figure3_database()
        assert db.row_count("departments") == 4
        assert db.row_count("employees") == 7
        assert db.row_count("tasks") == 14
        assert db.row_count("contacts") == 7

    def test_departments(self):
        db = figure3_database()
        names = {r["name"] for r in db.raw_rows("departments")}
        assert names == {"Product", "Quality", "Research", "Sales"}

    def test_key_rows_match_paper(self):
        db = figure3_database()
        employees = {r["name"]: r for r in db.raw_rows("employees")}
        assert employees["Bert"]["salary"] == 900
        assert employees["Erik"]["salary"] == 2_000_000
        assert employees["Fred"]["salary"] == 700
        cora_tasks = sorted(
            r["task"]
            for r in db.raw_rows("tasks")
            if r["employee"] == "Cora"
        )
        assert cora_tasks == ["abstract", "build", "call", "dissemble", "enthuse"]
        clients = {r["name"] for r in db.raw_rows("contacts") if r["client"]}
        assert clients == {"Pat", "Sue"}

    def test_quality_department_is_empty(self):
        db = figure3_database()
        assert not [
            r for r in db.raw_rows("employees") if r["dept"] == "Quality"
        ]

    def test_empty_database(self):
        db = empty_database()
        assert db.total_rows() == 0
