"""Cross-system agreement matrix on every paper query (QF1-QF6, Q1-Q6).

Every implemented evaluation strategy must compute the same multiset:
N⟦−⟧, the shredded semantics (3 index schemes), the SQL pipeline (flat and
natural), loop-lifting, and the naive avalanche — on a seeded random
instance, which is stronger than the Fig. 3 checks elsewhere.
"""

from __future__ import annotations

import pytest

from repro.baselines.looplifting import loop_lift_run
from repro.baselines.naive import avalanche_run
from repro.data import queries
from repro.nrc.semantics import evaluate
from repro.pipeline.flat import run_flat
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal, bag_size

ALL = {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}


@pytest.mark.parametrize("name", sorted(ALL))
def test_all_systems_agree(name, small_random_db):
    query = ALL[name]
    db = small_random_db
    reference = evaluate(query, db)

    outputs = {
        "shredding": ShreddingPipeline(db.schema).run(query, db),
        "shredding-natural": ShreddingPipeline(
            db.schema, SqlOptions(scheme="natural")
        ).run(query, db),
        "loop-lifting": loop_lift_run(query, db),
        "avalanche": avalanche_run(query, db),
    }
    compiled = ShreddingPipeline(db.schema).compile(query)
    for scheme in ("canonical", "natural", "flat"):
        outputs[f"memory-{scheme}"] = compiled.run_in_memory(db, scheme)
    if name.startswith("QF"):
        outputs["default-flat"] = run_flat(query, db)

    for system, out in outputs.items():
        assert bag_equal(out, reference), f"{name} via {system}"


@pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
def test_results_are_nonempty_on_random_data(name, small_random_db):
    """Guard against vacuous agreement: the generated instance exercises
    every nested query (Q2 may legitimately select no department)."""
    out = evaluate(queries.NESTED_QUERIES[name], small_random_db)
    if name != "Q2":
        assert bag_size(out) > 0, name


def test_flat_queries_exercised(small_random_db):
    sizes = {
        name: len(evaluate(query, small_random_db))
        for name, query in queries.FLAT_QUERIES.items()
    }
    assert sizes["QF1"] > 0 and sizes["QF2"] > 0 and sizes["QF4"] > 0
