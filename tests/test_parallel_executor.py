"""The read-connection pool and the thread-parallel package engine."""

from __future__ import annotations

import pytest

from repro.backend.database import Database
from repro.backend.executor import ExecutionStats
from repro.data.queries import NESTED_QUERIES
from repro.errors import BackendError
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal


def test_read_connections_share_the_store(db):
    rows = db.execute_sql('SELECT COUNT(*) FROM "employees"')
    (reader,) = db.read_connections(1)
    assert reader is not db.connection()
    assert reader.execute('SELECT COUNT(*) FROM "employees"').fetchall() == rows


def test_read_connections_are_reused_and_read_only(db):
    first = db.read_connections(2)
    assert db.read_connections(2) == first
    assert db.pool_size == 2
    import sqlite3

    with pytest.raises(sqlite3.OperationalError):
        first[0].execute('DELETE FROM "employees"')


def test_pool_rejects_non_positive_sizes(db):
    with pytest.raises(BackendError):
        db.read_connections(0)


def test_pool_sees_later_inserts(db):
    db.read_connections(1)
    before = db.execute_sql('SELECT COUNT(*) FROM "tasks"')[0][0]
    db.insert("tasks", [{"id": 999, "employee": "Alice", "task": "audit"}])
    (reader,) = db.read_connections(1)
    after = reader.execute('SELECT COUNT(*) FROM "tasks"').fetchone()[0]
    assert after == before + 1


def test_disposed_connection_closes_pool(db):
    db.read_connections(2)
    db._dispose_connection()
    assert db.pool_size == 0
    # A rebuilt connection serves fresh pool connections over fresh state.
    (reader,) = db.read_connections(1)
    assert reader.execute('SELECT COUNT(*) FROM "employees"').fetchone()[0] > 0


@pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
def test_parallel_engine_matches_batched(db, name):
    query = NESTED_QUERIES[name]
    pipeline = ShreddingPipeline(db.schema)
    compiled = pipeline.compile(query)
    batched_stats = ExecutionStats()
    parallel_stats = ExecutionStats()
    batched = compiled.run(db, engine="batched", stats=batched_stats)
    parallel = compiled.run(db, engine="parallel", stats=parallel_stats)
    assert bag_equal(batched, parallel)
    # Deterministic stats: same query count, same per-query row series.
    assert parallel_stats.queries == batched_stats.queries
    assert parallel_stats.per_query_rows == batched_stats.per_query_rows
    assert parallel_stats.rows_fetched == batched_stats.rows_fetched


def test_parallel_engine_with_optimizer_and_scans(db):
    query = NESTED_QUERIES["Q6"]
    expected = ShreddingPipeline(db.schema).run(query, db)
    stats = ExecutionStats()
    actual = ShreddingPipeline(db.schema, SqlOptions(optimize=True)).run(
        query, db, engine="parallel", stats=stats
    )
    assert bag_equal(expected, actual)
    assert stats.queries == 3  # one per nesting level, unchanged


def test_parallel_engine_leaves_no_scan_tables_behind(db):
    from repro.nrc import builders as b

    query = b.for_(
        "d",
        b.table("departments"),
        lambda d: b.ret(
            b.record(
                emps=b.for_(
                    "e",
                    b.table("employees"),
                    lambda e: b.where(
                        b.eq(e["dept"], d["name"]), b.ret(e["name"])
                    ),
                ),
                cts=b.for_(
                    "c",
                    b.table("contacts"),
                    lambda c: b.where(
                        b.eq(c["dept"], d["name"]), b.ret(c["name"])
                    ),
                ),
            )
        ),
    )
    compiled = ShreddingPipeline(
        db.schema, SqlOptions(optimize=True)
    ).compile(query)
    assert compiled.shared_scans
    compiled.run(db, engine="parallel")
    leftovers = db.execute_sql(
        "SELECT name FROM sqlite_master WHERE name LIKE 'qss_%'"
    )
    assert leftovers == []


def test_execution_stats_merge_preserves_series():
    left = ExecutionStats()
    left.record(3, 1.5)
    left.record_cache(True)
    right = ExecutionStats()
    right.record(7, 2.5)
    right.indexes_created = 2
    left.merge(right)
    assert left.queries == 2
    assert left.rows_fetched == 10
    assert left.per_query_rows == [3, 7]
    assert left.per_query_millis == [1.5, 2.5]
    assert left.cache_hits == 1
    assert left.indexes_created == 2


def test_max_workers_one_falls_back_to_sequential(db):
    from repro.backend.executor import execute_package_batched

    compiled = ShreddingPipeline(db.schema).compile(NESTED_QUERIES["Q1"])
    results = execute_package_batched(
        db, compiled.sql_package, parallel=True, max_workers=1
    )
    from repro.shred.stitch import stitch_grouped

    value = stitch_grouped(results, compiled._top_key())
    assert bag_equal(value, ShreddingPipeline(db.schema).run(NESTED_QUERIES["Q1"], db))
