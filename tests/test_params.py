"""Host parameters: typed ``Param`` placeholders compile once, bind per call.

Covers the whole thread: fingerprinting (plan-cache identity), SQL
placeholders in both indexing schemes, executor binding on every engine,
validation errors, and the fluent/captured surfaces.
"""

from __future__ import annotations

import pytest

from repro.api import Param, connect, param, query
from repro.errors import EvaluationError, ShreddingError, TypeCheckError
from repro.nrc import ast, builders as b
from repro.nrc.ast import term_fingerprint
from repro.nrc.semantics import evaluate
from repro.nrc.types import BOOL, INT, STRING, bag, record_type
from repro.pipeline.plan_cache import PlanCache
from repro.pipeline.shredder import ShreddingPipeline, collect_param_specs
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal


def _staff_above(threshold: ast.Term) -> ast.Term:
    """for (e ← employees) where (e.salary > X) return ⟨name, salary⟩."""
    return b.for_(
        "e",
        b.table("employees"),
        lambda e: b.where(
            b.gt(e["salary"], threshold),
            b.ret(b.record(name=e["name"], salary=e["salary"])),
        ),
    )


class TestParamNode:
    def test_param_requires_identifier_name(self):
        with pytest.raises(TypeCheckError):
            ast.Param("not an identifier", INT)

    def test_param_requires_base_type(self):
        with pytest.raises(TypeCheckError):
            ast.Param("rows", bag(record_type(n=INT)))

    def test_param_rejects_unit(self):
        from repro.nrc.types import UNIT

        with pytest.raises(TypeCheckError, match="Int/Bool/String"):
            ast.Param("u", UNIT)

    def test_fingerprint_ignores_nothing_but_values(self):
        # Same name+type → same fingerprint; either differing → different.
        assert term_fingerprint(ast.Param("x", INT)) == term_fingerprint(
            ast.Param("x", INT)
        )
        assert term_fingerprint(ast.Param("x", INT)) != term_fingerprint(
            ast.Param("y", INT)
        )
        assert term_fingerprint(ast.Param("x", INT)) != term_fingerprint(
            ast.Param("x", STRING)
        )

    def test_parameterised_queries_share_a_fingerprint(self):
        one = _staff_above(ast.Param("min_salary", INT))
        two = _staff_above(ast.Param("min_salary", INT))
        assert term_fingerprint(one) == term_fingerprint(two)

    def test_collect_param_specs_sorted_and_deduplicated(self):
        p = ast.Param("lo", INT)
        term = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(
                b.and_(b.gt(e["salary"], p), b.lt(e["salary"], ast.Param("hi", INT))),
                b.ret(e["name"]),
            ),
        )
        assert collect_param_specs(term) == (("hi", INT), ("lo", INT))

    def test_conflicting_param_types_rejected(self):
        term = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(
                b.and_(
                    b.gt(e["salary"], ast.Param("x", INT)),
                    b.eq(e["name"], ast.Param("x", STRING)),
                ),
                b.ret(e["name"]),
            ),
        )
        with pytest.raises(ShreddingError, match="conflicting"):
            collect_param_specs(term)

    def test_in_memory_semantics_rejects_params(self, db):
        with pytest.raises(EvaluationError, match="min_salary"):
            evaluate(_staff_above(ast.Param("min_salary", INT)), db)


class TestParamExecution:
    @pytest.mark.parametrize("engine", ["per-path", "batched", "parallel"])
    def test_rebinding_matches_substituted_constants(self, db, engine):
        session = connect(db, cache=False)
        prepared = session.prepare(_staff_above(ast.Param("min_salary", INT)))
        for threshold in (0, 900, 50000, 10**9):
            bound = prepared.run(engine=engine, params={"min_salary": threshold})
            expected = session.run(_staff_above(b.const(threshold))).value
            assert bag_equal(bound.value, expected), threshold

    def test_one_miss_then_hits_across_rebinds(self, db):
        cache = PlanCache()
        session = connect(db, cache=cache)
        term = _staff_above(ast.Param("min_salary", INT))
        for i, threshold in enumerate((0, 900, 50000)):
            # A fresh prepare per call models the service's execute path.
            session.prepare(term).run(params={"min_salary": threshold})
            assert cache.misses == 1
            assert cache.hits == i
        assert session.stats.cache_misses == 1
        assert session.stats.cache_hits == 2

    def test_params_in_nested_subquery(self, db):
        session = connect(db, cache=False)
        lo = param("lo", "int")
        nested = (
            session.table("departments", alias="d")
            .select(department="name")
            .nest(
                staff=lambda d: session.table("employees")
                .where(lambda e: (e.dept == d.name) & (e.salary > lo))
                .select("name")
            )
        )
        out = nested.prepare().run(params={"lo": 900}).sorted_by("department")
        assert all(
            staff["name"] != "Bert"
            for row in out
            for staff in row["staff"]
        )
        # The inner bags still exist for every department (left-outer shape).
        assert {row["department"] for row in out} == {
            row["name"] for row in db.rows("departments")
        }

    def test_params_inside_empty_probe(self, db):
        session = connect(db, cache=False)
        lo = param("lo", "int")
        probe = (
            session.table("departments", alias="d")
            .where(
                lambda d: session.table("employees")
                .where(lambda e: (e.dept == d.name) & (e.salary > lo))
                .is_empty()
            )
            .select("name")
        )
        high = probe.prepare().run(params={"lo": 10**9}).to_dicts()
        low = probe.prepare().run(params={"lo": -1}).to_dicts()
        # Threshold above every salary: every department's probe is empty.
        assert {row["name"] for row in high} == {
            row["name"] for row in db.rows("departments")
        }
        # Threshold below every salary: only staff-less departments remain.
        staffed = {row["dept"] for row in db.rows("employees")}
        assert {row["name"] for row in low} == {
            row["name"]
            for row in db.rows("departments")
            if row["name"] not in staffed
        }

    def test_natural_scheme_binds_params(self, db):
        session = connect(db, options=SqlOptions(scheme="natural"), cache=False)
        prepared = session.prepare(_staff_above(ast.Param("min_salary", INT)))
        assert "(:min_salary)" not in prepared.sql()  # rendered bare
        assert ":min_salary" in prepared.sql()
        out = prepared.run(params={"min_salary": 900})
        expected = session.run(_staff_above(b.const(900))).value
        assert bag_equal(out.value, expected)

    def test_optimizer_keeps_placeholders(self, db):
        session = connect(db, options=SqlOptions(optimize=True), cache=False)
        prepared = session.prepare(_staff_above(ast.Param("min_salary", INT)))
        assert ":min_salary" in prepared.sql()
        out = prepared.run(params={"min_salary": 900})
        expected = connect(db, cache=False).run(_staff_above(b.const(900))).value
        assert bag_equal(out.value, expected)

    def test_string_and_bool_params(self, db):
        session = connect(db, cache=False)
        dept = param("dept", "str")
        by_dept = (
            session.table("employees", alias="e")
            .where(lambda e: e.dept == dept)
            .select("name")
        )
        names = {
            row["name"]
            for row in by_dept.prepare().run(params={"dept": "Research"})
        }
        assert names == {
            row["name"] for row in db.rows("employees") if row["dept"] == "Research"
        }
        flag = param("flag", "bool")
        clients = (
            session.table("contacts", alias="c")
            .where(lambda c: c["client"] == flag)
            .select("name")
        )
        expected = {
            row["name"] for row in db.rows("contacts") if row["client"] is True
        }
        got = {
            row["name"] for row in clients.prepare().run(params={"flag": True})
        }
        assert got == expected

    def test_captured_query_closes_over_params(self, db):
        session = connect(db, cache=False)
        min_salary = param("min_salary", "int")

        @query
        def staff_above():
            return [
                {"name": e.name}
                for e in employees  # noqa: F821
                if e.salary > min_salary
            ]

        out = session.query(staff_above).run(params={"min_salary": 50000})
        assert {row["name"] for row in out} == {"Drew", "Erik", "Gina"}


class TestParamValidation:
    @pytest.fixture
    def prepared(self, db):
        session = connect(db, cache=False)
        return session.prepare(_staff_above(ast.Param("min_salary", INT)))

    def test_prepared_reports_params(self, prepared):
        assert prepared.params == ("min_salary",)

    def test_missing_param_rejected(self, prepared):
        with pytest.raises(ShreddingError, match=":min_salary"):
            prepared.run()

    def test_unknown_param_rejected(self, prepared):
        with pytest.raises(ShreddingError, match=":typo"):
            prepared.run(params={"min_salary": 1, "typo": 2})

    def test_wrong_type_rejected(self, prepared):
        with pytest.raises(ShreddingError, match="expects Int"):
            prepared.run(params={"min_salary": "high"})

    def test_bool_is_not_an_int(self, prepared):
        with pytest.raises(ShreddingError, match="expects Int"):
            prepared.run(params={"min_salary": True})

    def test_unparameterised_query_rejects_params(self, db):
        session = connect(db, cache=False)
        prepared = session.table("departments").select("name").prepare()
        with pytest.raises(ShreddingError, match="declares none"):
            prepared.run(params={"x": 1})

    def test_unknown_param_type_string(self):
        with pytest.raises(ShreddingError, match="unknown parameter type"):
            param("x", "float")

    def test_api_exports_param_both_ways(self):
        assert isinstance(param("x", BOOL).term, Param)


class TestPipelineLevelParams:
    def test_compiled_query_carries_specs(self, schema):
        pipeline = ShreddingPipeline(schema)
        compiled = pipeline.compile(_staff_above(ast.Param("min_salary", INT)))
        assert compiled.param_specs == (("min_salary", INT),)
        assert compiled.param_names == ("min_salary",)
        # Every statement that names the placeholder records it.
        from repro.shred.packages import annotations

        members = [c for _p, c in annotations(compiled.sql_package)]
        assert any("min_salary" in member.params for member in members)
