"""Tests for paths into types (§4.1)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPathError
from repro.nrc.types import INT, STRING, bag, nesting_degree, record_type
from repro.shred.paths import DOWN, EPSILON, Path, paths, type_at

RESULT = bag(
    record_type(
        department=STRING,
        people=bag(record_type(name=STRING, tasks=bag(STRING))),
    )
)


class TestPath:
    def test_empty(self):
        assert EPSILON.is_empty
        assert str(EPSILON) == "ε"
        assert len(EPSILON) == 0

    def test_extension(self):
        p = EPSILON.down().label("people")
        assert str(p) == "↓.people"
        assert len(p) == 2

    def test_head_tail(self):
        p = EPSILON.down().label("x")
        assert p.head() is DOWN
        assert p.tail() == Path(("x",))
        with pytest.raises(InvalidPathError):
            EPSILON.head()

    def test_down_is_singleton(self):
        from repro.shred.paths import _Down

        assert _Down() is DOWN

    def test_hashable(self):
        assert len({EPSILON, EPSILON.down()}) == 2


class TestPaths:
    def test_paper_result_type(self):
        """§4.1: paths(Result) = {ε, ↓.people.ε, ↓.people.↓.tasks.ε}."""
        assert [str(p) for p in paths(RESULT)] == [
            "ε",
            "↓.people",
            "↓.people.↓.tasks",
        ]

    def test_count_equals_nesting_degree(self):
        for a in [
            RESULT,
            bag(INT),
            bag(record_type(A=bag(INT), B=bag(STRING))),
            record_type(x=bag(INT), y=INT),
            INT,
        ]:
            assert len(paths(a)) == nesting_degree(a)

    def test_base_type_has_no_paths(self):
        assert paths(INT) == []

    def test_sibling_bags_ordered_by_label(self):
        a = bag(record_type(B=bag(STRING), A=bag(INT)))
        assert [str(p) for p in paths(a)] == ["ε", "↓.A", "↓.B"]


class TestTypeAt:
    def test_root(self):
        assert type_at(RESULT, EPSILON) == RESULT

    def test_inner_bag(self):
        p = EPSILON.down().label("people")
        assert type_at(RESULT, p) == bag(
            record_type(name=STRING, tasks=bag(STRING))
        )

    def test_deep(self):
        p = EPSILON.down().label("people").down().label("tasks")
        assert type_at(RESULT, p) == bag(STRING)

    def test_bad_step(self):
        with pytest.raises(InvalidPathError):
            type_at(INT, EPSILON.down())
        with pytest.raises(InvalidPathError):
            type_at(RESULT, EPSILON.label("nope"))
