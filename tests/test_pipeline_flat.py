"""Tests for the Links-default flat pipeline (Fig. 1a) and the Fig. 8 SQL."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import NotNormalisableError
from repro.nrc import builders as b
from repro.nrc.semantics import evaluate
from repro.pipeline.flat import compile_flat_query, run_flat, run_raw_sql
from repro.values import assert_bag_equal, bag_equal, dedup_nested


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(queries.FLAT_QUERIES))
    def test_matches_semantics(self, name, schema, db):
        query = queries.FLAT_QUERIES[name]
        assert bag_equal(run_flat(query, db), evaluate(query, db)), name

    @pytest.mark.parametrize("name", sorted(queries.FLAT_QUERIES))
    def test_matches_semantics_random(self, name, schema, small_random_db):
        query = queries.FLAT_QUERIES[name]
        assert bag_equal(
            run_flat(query, small_random_db), evaluate(query, small_random_db)
        ), name

    def test_q2_is_flat_despite_nested_source(self, schema, db):
        # Q2 consumes the nested Q1 but produces a flat result, so the
        # default pipeline handles it after normalisation (§2.2).
        out = run_flat(queries.Q2, db)
        assert bag_equal(out, evaluate(queries.Q2, db))
        assert sorted(r["dept"] for r in out) == ["Quality", "Research"]

    def test_single_statement(self, schema):
        compiled = compile_flat_query(queries.QF4, schema)
        assert compiled.sql.count("UNION ALL") == 1
        assert "ROW_NUMBER" not in compiled.sql


class TestRejection:
    def test_nested_query_rejected(self, schema):
        with pytest.raises(NotNormalisableError):
            compile_flat_query(queries.Q1, schema)

    def test_nested_field_rejected(self, schema):
        with pytest.raises(NotNormalisableError):
            compile_flat_query(queries.Q4, schema)


class TestRawFig8Sql:
    """The hand-written Fig. 8 SQL agrees with the λNRC versions (set-wise
    for QF5/QF6, whose MINUS is set-difference; see data/queries.py)."""

    @pytest.mark.parametrize("name", ["QF1", "QF2", "QF3", "QF4"])
    def test_bag_agreement(self, name, db):
        raw = run_raw_sql(db, queries.QF_SQL[name], _columns(name))
        ours = run_flat(queries.FLAT_QUERIES[name], db)
        assert bag_equal(raw, ours), name

    @pytest.mark.parametrize("name", ["QF5", "QF6"])
    def test_set_agreement(self, name, db):
        # Fig. 8's MINUS is set-difference while the λNRC anti-join keeps
        # bag multiplicities, so QF5/QF6 agree as *sets* (see queries.py).
        raw = run_raw_sql(db, queries.QF_SQL[name], _columns(name))
        ours = run_flat(queries.FLAT_QUERIES[name], db)
        assert_bag_equal(dedup_nested(raw), dedup_nested(ours), name)

    def test_expected_rows_on_fig3(self, db):
        assert len(run_raw_sql(db, queries.QF_SQL["QF1"], ("emp",))) == 5
        assert len(run_raw_sql(db, queries.QF_SQL["QF2"], ("emp", "tsk"))) == 14
        assert run_raw_sql(db, queries.QF_SQL["QF3"], ("emp1", "emp2")) == []
        assert len(run_raw_sql(db, queries.QF_SQL["QF4"], ("emp",))) == 5
        assert run_raw_sql(db, queries.QF_SQL["QF5"], ("emp",)) == [
            {"emp": "Cora"}
        ]
        assert run_raw_sql(db, queries.QF_SQL["QF6"], ("emp",)) == []


class TestScalarResults:
    def test_bag_of_base(self, db):
        query = b.for_("d", b.table("departments"), lambda d: b.ret(d["name"]))
        out = run_flat(query, db)
        assert sorted(out) == ["Product", "Quality", "Research", "Sales"]


def _columns(name: str) -> tuple[str, ...]:
    return {
        "QF1": ("emp",),
        "QF2": ("emp", "tsk"),
        "QF3": ("emp1", "emp2"),
        "QF4": ("emp",),
        "QF5": ("emp",),
        "QF6": ("emp",),
    }[name]
