"""End-to-end tests of the shredding pipeline (Fig. 1c) against SQLite."""

from __future__ import annotations

import itertools

import pytest

from repro.backend.executor import ExecutionStats
from repro.data import queries
from repro.errors import ShreddingError
from repro.nrc import builders as b
from repro.nrc.semantics import evaluate
from repro.nrc.types import nesting_degree
from repro.pipeline.shredder import ShreddingPipeline, shred_run, shred_sql
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal

ALL_QUERIES = {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}


class TestFixedNumberOfQueries:
    """§1: shredding issues exactly nesting_degree(A) queries, independent of
    the data — the headline claim against the N+1 problem."""

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_query_count(self, name, schema, db):
        pipeline = ShreddingPipeline(schema)
        compiled = pipeline.compile(queries.NESTED_QUERIES[name])
        assert compiled.query_count == nesting_degree(compiled.result_type)
        stats = ExecutionStats()
        compiled.run(db, stats=stats)
        assert stats.queries == compiled.query_count

    def test_count_does_not_grow_with_data(self, schema):
        from repro.data.generator import generate_organisation

        pipeline = ShreddingPipeline(schema)
        compiled = pipeline.compile(queries.Q6)
        for departments in (1, 4):
            db = generate_organisation(departments, 3, 2, seed=1)
            stats = ExecutionStats()
            compiled.run(db, stats=stats)
            assert stats.queries == 3


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_sql_matches_semantics_fig3(self, name, schema, db):
        query = ALL_QUERIES[name]
        assert bag_equal(shred_run(query, db), evaluate(query, db)), name

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_sql_matches_semantics_random(self, name, schema, small_random_db):
        query = queries.NESTED_QUERIES[name]
        assert bag_equal(
            shred_run(query, small_random_db), evaluate(query, small_random_db)
        ), name

    @pytest.mark.parametrize("name", ["Q1", "Q4", "Q6"])
    def test_empty_database(self, name, empty_db):
        assert shred_run(queries.NESTED_QUERIES[name], empty_db) == []

    @pytest.mark.parametrize(
        "scheme,inline,keys",
        [
            p
            for p in itertools.product(
                ["flat", "natural"], [False, True], [False, True]
            )
            if not (p[0] == "natural" and (p[1] or p[2]))
        ],
    )
    def test_all_option_combinations_on_q6(self, scheme, inline, keys, db):
        options = SqlOptions(
            scheme=scheme, inline_with=inline, order_by_keys=keys
        )
        out = shred_run(queries.Q6, db, options)
        assert bag_equal(out, evaluate(queries.Q6, db))

    def test_in_memory_matches_sql(self, schema, db):
        pipeline = ShreddingPipeline(schema)
        compiled = pipeline.compile(queries.Q6)
        via_sql = compiled.run(db)
        for scheme in ("canonical", "natural", "flat"):
            via_memory = compiled.run_in_memory(db, scheme)
            assert bag_equal(via_sql, via_memory), scheme


class TestApi:
    def test_shred_sql_returns_pairs(self, schema):
        pairs = shred_sql(queries.Q6, schema)
        assert [p for p, _ in pairs] == ["ε", "↓.people", "↓.people.↓.tasks"]
        assert all("SELECT" in sql for _, sql in pairs)

    def test_lazy_export_from_top_package(self):
        import repro

        assert repro.shred_run is shred_run
        with pytest.raises(AttributeError):
            repro.nonexistent_name

    def test_non_bag_query_rejected(self, schema):
        pipeline = ShreddingPipeline(schema)
        with pytest.raises(Exception):
            pipeline.compile(b.const(1))

    def test_compiled_is_reusable_across_databases(self, schema, db, empty_db):
        compiled = ShreddingPipeline(schema).compile(queries.Q4)
        full = compiled.run(db)
        empty = compiled.run(empty_db)
        assert len(full) == 4 and empty == []


class TestEdgeCases:
    def test_constant_query(self, db):
        query = b.ret(b.record(answer=b.const(42)))
        assert shred_run(query, db) == [{"answer": 42}]

    def test_constant_nested_query(self, db):
        query = b.ret(b.record(xs=b.bag_of(b.const(1), b.const(2))))
        out = shred_run(query, db)
        assert bag_equal(out, [{"xs": [1, 2]}])

    def test_empty_bag_query(self, db):
        from repro.nrc.types import INT

        query = b.empty_bag(INT)
        assert shred_run(query, db) == []

    def test_union_of_literal_bags(self, db):
        query = b.union(
            b.ret(b.record(n=b.const(1))), b.ret(b.record(n=b.const(2)))
        )
        assert bag_equal(shred_run(query, db), [{"n": 1}, {"n": 2}])

    def test_deeply_nested_constant(self, db):
        query = b.ret(
            b.record(level1=b.ret(b.record(level2=b.ret(b.const("deep")))))
        )
        out = shred_run(query, db)
        assert out == [{"level1": [{"level2": ["deep"]}]}]

    def test_boolean_columns_round_trip(self, db):
        query = b.for_(
            "c",
            b.table("contacts"),
            lambda c: b.ret(b.record(name=c["name"], client=c["client"])),
        )
        out = shred_run(query, db)
        assert {row["name"]: row["client"] for row in out}["Pat"] is True

    def test_emptiness_in_result_field(self, db):
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    name=d["name"],
                    has_emps=b.not_(
                        b.is_empty(
                            b.for_(
                                "e",
                                b.table("employees"),
                                lambda e: b.where(
                                    b.eq(e["dept"], d["name"]),
                                    b.ret(b.record()),
                                ),
                            )
                        )
                    ),
                )
            ),
        )
        out = shred_run(query, db)
        flags = {row["name"]: row["has_emps"] for row in out}
        assert flags == {
            "Product": True,
            "Quality": False,
            "Research": True,
            "Sales": True,
        }


class TestExplain:
    def test_explain_contains_all_sections(self, schema):
        from repro.data.queries import Q6

        report = ShreddingPipeline(schema).compile(Q6).explain()
        assert "result type" in report
        assert "nesting degree : 3" in report
        assert "return^a" in report  # the normal form
        assert report.count("── query at") == 3
        assert "ROW_NUMBER" in report

    def test_explain_mentions_scheme(self, schema):
        from repro.data.queries import Q4
        from repro.sql.codegen import SqlOptions

        report = (
            ShreddingPipeline(schema, SqlOptions(scheme="natural"))
            .compile(Q4)
            .explain()
        )
        assert "index scheme   : natural" in report
