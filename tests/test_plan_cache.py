"""Plan-cache correctness: hits are value-identical to cold compiles, and
every compilation input participates in the key.

Covers the cache key machinery (term/schema fingerprints), LRU behaviour,
stats plumbing, the batched execution engine a cached plan typically runs
under, and — via Hypothesis over :mod:`tests.strategies` — the property
that serving a plan from cache never changes query results.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.backend.executor import ExecutionStats
from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.data.queries import NESTED_QUERIES
from repro.nrc import ast
from repro.nrc.ast import term_fingerprint
from repro.nrc.builders import for_, ret, table
from repro.nrc.schema import Schema, TableSchema
from repro.nrc.types import INT, STRING
from repro.pipeline.plan_cache import PlanCache, plan_key, shared_plan_cache
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal

from .strategies import queries_with_nesting

Q4 = NESTED_QUERIES["Q4"]
Q6 = NESTED_QUERIES["Q6"]


class TestFingerprints:
    def test_structurally_identical_terms_share_fingerprints(self):
        one = for_("x", table("departments"), ret(ast.Var("x")["name"]))
        two = for_("x", table("departments"), ret(ast.Var("x")["name"]))
        assert one is not two
        assert term_fingerprint(one) == term_fingerprint(two)

    def test_alpha_variants_fingerprint_apart(self):
        one = for_("x", table("departments"), ret(ast.Var("x")["name"]))
        two = for_("y", table("departments"), ret(ast.Var("y")["name"]))
        assert term_fingerprint(one) != term_fingerprint(two)

    def test_constants_of_different_types_fingerprint_apart(self):
        assert term_fingerprint(ast.Const(1)) != term_fingerprint(ast.Const("1"))
        assert term_fingerprint(ast.Const(True)) != term_fingerprint(ast.Const(1))

    def test_fingerprint_is_memoised_on_the_instance(self):
        term = for_("x", table("departments"), ret(ast.Var("x")["name"]))
        assert term_fingerprint(term) is term_fingerprint(term)

    def test_interning_shares_one_instance_per_structure(self):
        from repro.nrc.ast import intern_term

        one = intern_term(
            for_("x", table("departments"), ret(ast.Var("x")["name"]))
        )
        two = intern_term(
            for_("x", table("departments"), ret(ast.Var("x")["name"]))
        )
        assert one is two

    def test_schema_fingerprint_distinguishes_schemas(self):
        base = Schema((TableSchema("t", (("id", INT),), key=("id",)),))
        wider = Schema(
            (TableSchema("t", (("id", INT), ("s", STRING)), key=("id",)),)
        )
        rekeyed = Schema((TableSchema("t", (("id", INT),), key=()),))
        fingerprints = {
            base.fingerprint(),
            wider.fingerprint(),
            rekeyed.fingerprint(),
        }
        assert len(fingerprints) == 3
        assert base.fingerprint() == Schema(
            (TableSchema("t", (("id", INT),), key=("id",)),)
        ).fingerprint()


class TestCacheBehaviour:
    def test_repeat_compile_is_a_hit_returning_the_same_plan(self):
        cache = PlanCache()
        pipeline = ShreddingPipeline(ORGANISATION_SCHEMA, cache=cache)
        stats = ExecutionStats()
        first = pipeline.compile(Q4, stats=stats)
        second = pipeline.compile(Q4, stats=stats)
        assert first is second
        assert (stats.cache_misses, stats.cache_hits) == (1, 1)
        assert cache.stats()["hit_rate"] == 0.5

    def test_hit_results_are_value_identical_to_cold_compile(self, db):
        cache = PlanCache()
        pipeline = ShreddingPipeline(db.schema, cache=cache)
        cold = ShreddingPipeline(db.schema).compile(Q6).run(db)
        pipeline.compile(Q6)  # miss
        hit = pipeline.compile(Q6)  # hit
        assert bag_equal(hit.run(db), cold)
        assert bag_equal(hit.run(db, engine="batched"), cold)

    def test_differing_sql_options_miss(self):
        cache = PlanCache()
        flat = ShreddingPipeline(ORGANISATION_SCHEMA, cache=cache)
        natural = ShreddingPipeline(
            ORGANISATION_SCHEMA, SqlOptions(scheme="natural"), cache=cache
        )
        a = flat.compile(Q4)
        b = natural.compile(Q4)
        assert a is not b
        assert cache.hits == 0 and cache.misses == 2

    def test_differing_validate_flag_misses(self):
        cache = PlanCache()
        plain = ShreddingPipeline(ORGANISATION_SCHEMA, cache=cache)
        checked = ShreddingPipeline(
            ORGANISATION_SCHEMA, validate=True, cache=cache
        )
        assert plain.compile(Q4) is not checked.compile(Q4)
        assert cache.misses == 2

    def test_schema_change_misses(self):
        # Same cache, same term, a schema with one extra table: distinct key.
        extended = Schema(
            ORGANISATION_SCHEMA.tables
            + (TableSchema("extra", (("id", INT),), key=("id",)),)
        )
        cache = PlanCache()
        ShreddingPipeline(ORGANISATION_SCHEMA, cache=cache).compile(Q4)
        ShreddingPipeline(extended, cache=cache).compile(Q4)
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 2

    def test_alpha_equivalent_but_distinct_terms_miss(self, db):
        one = for_("x", table("departments"), ret(ast.Var("x")["name"]))
        two = for_("y", table("departments"), ret(ast.Var("y")["name"]))
        key = plan_key(one, db.schema, SqlOptions())
        assert key != plan_key(two, db.schema, SqlOptions())

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        pipeline = ShreddingPipeline(ORGANISATION_SCHEMA, cache=cache)
        q1, q2, q3 = (NESTED_QUERIES[n] for n in ("Q1", "Q3", "Q4"))
        pipeline.compile(q1)
        pipeline.compile(q2)
        pipeline.compile(q1)  # refresh q1: q2 is now least recent
        pipeline.compile(q3)  # evicts q2
        assert len(cache) == 2
        assert cache.evictions == 1
        assert plan_key(q2, ORGANISATION_SCHEMA, SqlOptions()) not in cache
        assert plan_key(q1, ORGANISATION_SCHEMA, SqlOptions()) in cache

    def test_shared_cache_via_true(self):
        pipeline = ShreddingPipeline(ORGANISATION_SCHEMA, cache=True)
        assert pipeline.cache is shared_plan_cache()

    def test_cache_false_means_no_cache(self):
        pipeline = ShreddingPipeline(ORGANISATION_SCHEMA, cache=False)
        assert pipeline.cache is None
        compiled = pipeline.compile(Q4)
        assert compiled.cache_key is None

    def test_cache_key_recorded_on_plan_and_statements(self):
        from repro.shred.packages import annotations

        pipeline = ShreddingPipeline(ORGANISATION_SCHEMA, cache=PlanCache())
        compiled = pipeline.compile(Q4)
        assert compiled.cache_key is not None
        assert compiled.cache_key.term_fp == term_fingerprint(Q4)
        for _path, sql in annotations(compiled.sql_package):
            assert sql.cache_key is compiled.cache_key


class TestFlatPipelineCache:
    def test_flat_compile_cache_roundtrip(self, db):
        from repro.data.queries import FLAT_QUERIES
        from repro.pipeline.flat import compile_flat_query

        qf = FLAT_QUERIES["QF1"]
        cache = PlanCache()
        first = compile_flat_query(qf, db.schema, cache=cache)
        second = compile_flat_query(qf, db.schema, cache=cache)
        assert first is second
        cold = compile_flat_query(qf, db.schema)
        assert cold.sql == first.sql

    def test_shared_cache_keeps_pipelines_apart(self, db):
        # The flat and shredding compilers share one cache without serving
        # each other's plans: the key's pipeline discriminator differs.
        from repro.data.queries import FLAT_QUERIES
        from repro.pipeline.flat import FlatCompiled, compile_flat_query

        qf = FLAT_QUERIES["QF1"]
        cache = PlanCache()
        shredded = ShreddingPipeline(db.schema, cache=cache).compile(qf)
        flat = compile_flat_query(qf, db.schema, cache=cache)
        assert isinstance(flat, FlatCompiled)
        assert flat is not shredded
        assert len(cache) == 2
        rows = flat.decode_rows(db.execute_sql(flat.sql))
        assert rows  # the Fig. 3 instance has departments


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(query=queries_with_nesting())
def test_property_cache_hits_match_cold_compiles(query):
    """Serving a plan from cache never changes results (both engines)."""
    db = figure3_database()
    try:
        cold = ShreddingPipeline(db.schema).run(query, db)
    except Exception:
        # Some generated queries are degenerate (e.g. ∅ with erased element
        # type); cache behaviour on compilable queries is what's under test.
        return
    cache = PlanCache()
    pipeline = ShreddingPipeline(db.schema, cache=cache)
    pipeline.compile(query)  # cold miss
    hit = pipeline.compile(query)  # hit
    assert bag_equal(hit.run(db), cold)
    assert bag_equal(hit.run(db, engine="batched"), cold)
    assert cache.hits >= 1


@settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(query=queries_with_nesting())
def test_property_fast_decoders_match_reference(query):
    """The precompiled tuple decoders agree with the App. E unflattening."""
    from repro.shred.packages import annotations

    db = figure3_database()
    try:
        compiled = ShreddingPipeline(db.schema).compile(query)
    except Exception:
        return
    for _path, sql in annotations(compiled.sql_package):
        raw = db.execute_sql(sql.sql)
        assert sql.decode_rows_fast(raw) == sql.decode_rows(raw)


class TestBatchedEngine:
    @pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
    def test_batched_equals_per_path(self, db, name):
        compiled = ShreddingPipeline(db.schema).compile(NESTED_QUERIES[name])
        assert bag_equal(
            compiled.run(db, engine="batched"), compiled.run(db)
        )

    def test_batched_engine_records_stats(self, db):
        compiled = ShreddingPipeline(db.schema).compile(Q6)
        stats = ExecutionStats()
        compiled.run(db, engine="batched", stats=stats)
        assert stats.queries == compiled.query_count
        assert len(stats.per_query_millis) == stats.queries
        assert all(millis >= 0.0 for millis in stats.per_query_millis)

    def test_batched_creates_reusable_indexes(self, db):
        compiled = ShreddingPipeline(db.schema).compile(Q6)
        first, second = ExecutionStats(), ExecutionStats()
        compiled.run(db, engine="batched", stats=first)
        compiled.run(db, engine="batched", stats=second)
        assert first.indexes_created >= 1
        assert second.indexes_created == 0  # reused, not recreated

    def test_unknown_engine_rejected(self, db):
        from repro.errors import ShreddingError

        compiled = ShreddingPipeline(db.schema).compile(Q4)
        with pytest.raises(ShreddingError):
            compiled.run(db, engine="warp")

    def test_batched_requires_one_pass_stitch(self, db):
        from repro.errors import ShreddingError

        compiled = ShreddingPipeline(db.schema).compile(Q4)
        with pytest.raises(ShreddingError):
            compiled.run(db, engine="batched", one_pass_stitch=False)
