"""Tests for the λNRC pretty printer."""

from __future__ import annotations

from repro.nrc import builders as b
from repro.nrc.ast import App, Lam, Var
from repro.nrc.pretty import pretty


class TestAtoms:
    def test_constants(self):
        assert pretty(b.const(5)) == "5"
        assert pretty(b.const(True)) == "true"
        assert pretty(b.const("hi")) == "“hi”"

    def test_var_and_projection(self):
        assert pretty(Var("x")["name"]) == "x.name"

    def test_table(self):
        assert pretty(b.table("t")) == "table t"

    def test_empty(self):
        assert pretty(b.empty_bag()) == "∅"


class TestCompound:
    def test_infix_and_unicode_ops(self):
        t = b.and_(b.eq(Var("x")["a"], b.const(1)), b.not_(Var("p")))
        out = pretty(t)
        assert "∧" in out and "¬" in out and "=" in out

    def test_where_sugar_recognised(self):
        t = b.where(Var("p"), b.ret(Var("x")))
        assert "where" in pretty(t)
        assert "else" not in pretty(t)

    def test_plain_if(self):
        t = b.if_(Var("p"), b.const(1), b.const(2))
        assert "if" in pretty(t) and "else" in pretty(t)

    def test_for_comprehension(self):
        t = b.for_("x", b.table("t"), lambda x: b.ret(x))
        assert pretty(t) == "for (x ← table t) return x"

    def test_union(self):
        t = b.union(b.ret(b.const(1)), b.ret(b.const(2)))
        assert "⊎" in pretty(t)

    def test_lambda_and_application(self):
        t = App(Lam("x", Var("x")), b.const(1))
        out = pretty(t)
        assert "λx" in out

    def test_record(self):
        t = b.record(a=b.const(1), b=b.const(2))
        assert pretty(t) == "⟨a = 1, b = 2⟩"

    def test_empty_test(self):
        assert pretty(b.is_empty(b.table("t"))) == "empty(table t)"

    def test_paper_query_round(self):
        from repro.data.queries import Q4

        out = pretty(Q4)
        assert "departments" in out and "employees" in out and "where" in out
