"""Tests for primitive operators Σ(c)."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError, UnknownPrimitiveError
from repro.nrc.primitives import PRIMITIVES, apply_prim, check_prim, spec
from repro.nrc.types import BOOL, INT, STRING


class TestRegistry:
    def test_expected_operators_present(self):
        assert {"=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "and", "or",
                "not", "^"} <= set(PRIMITIVES)

    def test_unknown_operator(self):
        with pytest.raises(UnknownPrimitiveError):
            spec("frobnicate")

    def test_specs_consistent(self):
        for name, prim in PRIMITIVES.items():
            assert prim.name == name
            assert prim.arity in (1, 2)
            assert prim.sql.split(":")[0] in ("infix", "prefix")


class TestTypeRules:
    def test_equality_polymorphic(self):
        for base in (INT, BOOL, STRING):
            assert check_prim("=", [base, base]) == BOOL

    def test_equality_heterogeneous_rejected(self):
        with pytest.raises(TypeCheckError):
            check_prim("=", [INT, STRING])

    def test_ordering_excludes_bool(self):
        assert check_prim("<", [INT, INT]) == BOOL
        assert check_prim("<", [STRING, STRING]) == BOOL
        with pytest.raises(TypeCheckError):
            check_prim("<", [BOOL, BOOL])

    def test_arith(self):
        assert check_prim("+", [INT, INT]) == INT
        with pytest.raises(TypeCheckError):
            check_prim("+", [STRING, STRING])

    def test_concat(self):
        assert check_prim("^", [STRING, STRING]) == STRING

    def test_arity_checked(self):
        with pytest.raises(TypeCheckError):
            check_prim("not", [BOOL, BOOL])

    def test_non_base_rejected(self):
        from repro.nrc.types import record_type

        with pytest.raises(TypeCheckError):
            check_prim("=", [record_type(a=INT), record_type(a=INT)])


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,args,expected",
        [
            ("=", (1, 1), True),
            ("<>", ("a", "b"), True),
            ("<", (1, 2), True),
            ("<=", (2, 2), True),
            (">", (3, 2), True),
            (">=", (1, 2), False),
            ("+", (2, 3), 5),
            ("-", (2, 3), -1),
            ("*", (4, 3), 12),
            ("div", (7, 2), 3),
            ("mod", (7, 2), 1),
            ("and", (True, False), False),
            ("or", (True, False), True),
            ("not", (False,), True),
            ("^", ("ab", "cd"), "abcd"),
        ],
    )
    def test_apply(self, op, args, expected):
        assert apply_prim(op, list(args)) == expected

    def test_division_by_zero_total(self):
        # SQL integer division truncates toward zero; by-zero yields 0 here
        # so in-memory evaluation is total like the SQL NULL-free fragment.
        assert apply_prim("div", [1, 0]) == 0
        assert apply_prim("mod", [1, 0]) == 0

    def test_div_truncates_toward_zero(self):
        # Matches SQLite's integer division (not Python floor division).
        assert apply_prim("div", [-7, 2]) == -3
