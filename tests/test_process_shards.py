"""Differential conformance over the **process-group transport**.

The PR 5 suite (``test_shard_differential.py``) proves the sharded
semantics in-process and against in-process wire servers; this suite
runs the same differential claims against deployments of real
``serve --shard i/n`` **subprocesses** that a
:class:`~repro.shard.deployment.ProcessShardedSession` spawns and owns:

* Q1–Q6 plus the parameterised registry queries are value-equal, as
  nested multisets, to single-session execution at 2 and 4 shards under
  the co-partitioned placement;
* the new co-partitioned Q5 ``fanout`` classification holds over the
  wire, with **exact** per-shard request counters (every shard executes
  exactly once per fan-out, the fallback not at all);
* routed point lookups hit exactly one shard process;
* ad-hoc terms travel via the protocol v1.4 ``register`` op (the λNRC
  serializer round-trips through a live server) and re-registration is
  convergent;
* wire inserts are visible to subsequent fan-out reads and dedup by
  idempotency key.

Clusters are module-scoped: each spawns ``shards + 1`` subprocesses
(partitions + the full-copy fallback), so the suite boots eleven
servers total — enough to be real, bounded enough for CI.
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.data.generator import scaled_database
from repro.service.registry import paper_registry
from repro.shard import Placement, connect_sharded, shard_for, sharded
from repro.values import assert_bag_equal

SCALE = 8
ROWS = 5
QUERIES = ("Q1", "Q2", "Q3", "Q4", "Q5", "Q6")

P_DEPT_CO = Placement.of(
    {"departments": sharded(key="name"), "employees": sharded(key="dept")},
    aligned=[("departments", "employees")],
)
P_TASK_CO = Placement.of(
    {"tasks": sharded(key="employee"), "employees": sharded(key="name")},
    aligned=[("tasks", "employees")],
)

REGISTRY = paper_registry()


@pytest.fixture(scope="module")
def single():
    session = connect(scaled_database(SCALE, seed=0, scale_rows=ROWS))
    yield session
    session.close()


@pytest.fixture(scope="module")
def clusters():
    built = {}

    def cluster(placement, shards):
        key = (placement.to_spec(), shards)
        if key not in built:
            built[key] = connect_sharded(
                placement=placement,
                shards=shards,
                processes=True,
                scale=SCALE,
                rows=ROWS,
            )
        return built[key]

    yield cluster
    for session in built.values():
        session.close()
        session.close()  # idempotent — teardown paths often double-close


class TestPaperQueriesOverProcesses:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_dept_copartitioned_cluster_agrees(self, single, clusters, shards):
        session = clusters(P_DEPT_CO, shards)
        for name in QUERIES:
            expected = single.run(REGISTRY.lookup(name).term).value
            result = session.run(name)
            assert_bag_equal(
                result.value,
                expected,
                f"{name} @ {shards} process shards ({result.route})",
            )

    def test_task_copartitioned_cluster_agrees(self, single, clusters):
        session = clusters(P_TASK_CO, 2)
        for name in QUERIES:
            expected = single.run(REGISTRY.lookup(name).term).value
            result = session.run(name)
            assert_bag_equal(
                result.value,
                expected,
                f"{name} over task_co processes ({result.route})",
            )

    def test_parameterised_queries_agree(self, single, clusters):
        session = clusters(P_DEPT_CO, 2)
        term = REGISTRY.lookup("staff_above").term
        for threshold in (0, 900, 2_000_000):
            params = {"min_salary": threshold}
            expected = single.run(term, params=params).value
            result = session.run("staff_above", params=params)
            assert_bag_equal(result.value, expected, str(threshold))


class TestQ5FanoutOverProcesses:
    def test_q5_classifies_fanout_and_every_shard_executes_once(
        self, single, clusters
    ):
        session = clusters(P_TASK_CO, 2)
        plan = session.plan_for("Q5")
        assert plan.mode == "fanout", plan.reason
        prepared = session.prepare("Q5")
        before = session.run_counts()
        result = prepared.run()
        after = session.run_counts()
        assert result.route == "fanout"
        assert result.shards == (0, 1)
        deltas = [
            b - a
            for a, b in zip(before["per_shard"], after["per_shard"])
        ]
        assert deltas == [1, 1], deltas
        assert after["fallback"] == before["fallback"]
        expected = single.run(REGISTRY.lookup("Q5").term).value
        assert_bag_equal(result.value, expected, "Q5 process fanout")


class TestRoutingOverProcesses:
    def test_dept_staff_hits_exactly_one_shard_process(
        self, single, clusters
    ):
        session = clusters(P_DEPT_CO, 4)
        term = REGISTRY.lookup("dept_staff").term
        for dept in ("Dept00001", "Dept00002", "Dept00005", "Dept00008"):
            params = {"dept": dept}
            expected = single.run(term, params=params).value
            owner = shard_for(dept, 4)
            before = session.run_counts()["per_shard"]
            result = session.run("dept_staff", params=params)
            after = session.run_counts()["per_shard"]
            deltas = [b - a for a, b in zip(before, after)]
            assert result.route == f"routed:{owner}"
            assert sum(deltas) == 1 and deltas[owner] == 1, (dept, deltas)
            assert_bag_equal(result.value, expected, dept)


class TestRegisterOverProcesses:
    def test_adhoc_terms_ship_and_agree(self, single, clusters):
        session = clusters(P_DEPT_CO, 2)
        for name in ("Q2", "Q6"):
            term = REGISTRY.lookup(name).term
            expected = single.run(term).value
            result = session.run(term)  # not a name: registers fleet-wide
            assert_bag_equal(result.value, expected, f"ad-hoc {name}")

    def test_register_is_convergent(self, clusters):
        session = clusters(P_DEPT_CO, 2)
        term = REGISTRY.lookup("Q3").term
        first = session.register("pr10_q3", term)
        again = session.register("pr10_q3", term)
        assert first["registered"] is True
        assert again["registered"] is False  # structurally identical
        assert first["fingerprint"] == again["fingerprint"]
        assert first["endpoints"] == 3  # 2 shards + the fallback

    def test_unknown_name_raises(self, clusters):
        from repro.errors import ShardingError

        session = clusters(P_DEPT_CO, 2)
        with pytest.raises(ShardingError):
            session.run("no_such_query")


class TestWritesOverProcesses:
    def test_insert_is_visible_and_idempotent(self, clusters):
        session = clusters(P_TASK_CO, 2)
        before = len(session.run("staff_above",
                                 params={"min_salary": -1}).value)
        row = {
            "id": 77_777,
            "dept": "Dept00001",
            "name": "pr10_new_hire",
            "salary": 123_456,
        }
        first = session.insert("employees", [row])
        assert first["applied"] is True
        redelivered = session.insert(
            "employees", [row], idempotency_key=first["idempotency_key"]
        )
        assert redelivered["applied"] is False
        after = session.run("staff_above", params={"min_salary": -1}).value
        assert len(after) == before + 1  # applied exactly once, everywhere
        assert any(r["name"] == "pr10_new_hire" for r in after)
