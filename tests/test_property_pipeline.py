"""Property-based tests: random well-typed queries through every pipeline.

These are the heavyweight invariants:

* normalisation preserves N⟦−⟧ (Theorem 1);
* shred → run → stitch = N⟦−⟧ under every indexing scheme (Theorem 4);
* the SQL pipeline (flat and natural schemes) agrees with N⟦−⟧;
* the loop-lifting baseline agrees with N⟦−⟧;
* let-insertion agrees with the flat shredded semantics (Theorem 6).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.normalise import nf_to_term, normalise
from repro.nrc.semantics import evaluate
from repro.nrc.typecheck import infer
from repro.values import bag_equal

from .strategies import queries_with_bindings, queries_with_nesting

SCHEMA = ORGANISATION_SCHEMA
DB = figure3_database()

_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(queries_with_nesting())
@_settings
def test_generated_queries_typecheck(query):
    result_type = infer(query, SCHEMA)
    from repro.nrc.types import BagType, is_nested

    assert isinstance(result_type, BagType)
    assert is_nested(result_type)


@given(queries_with_nesting())
@_settings
def test_normalisation_preserves_semantics(query):
    nf = normalise(query, SCHEMA)
    assert bag_equal(evaluate(query, DB), evaluate(nf_to_term(nf), DB))


@given(queries_with_nesting())
@_settings
def test_shredding_theorem4_in_memory(query):
    from repro.shred.indexes import index_fn_for
    from repro.shred.packages import shred_query_package
    from repro.shred.semantics import run_package
    from repro.shred.stitch import stitch

    nf = normalise(query, SCHEMA)
    result_type = infer(query, SCHEMA)
    package = shred_query_package(nf, result_type)
    expected = evaluate(query, DB)
    for scheme in ("canonical", "flat"):
        index = index_fn_for(scheme, nf, DB, SCHEMA)
        stitched = stitch(run_package(package, DB, index), index)
        assert bag_equal(stitched, expected), scheme


@given(queries_with_nesting())
@_settings
def test_sql_pipeline_matches_semantics(query):
    from repro.pipeline.shredder import ShreddingPipeline
    from repro.sql.codegen import SqlOptions

    expected = evaluate(query, DB)
    for options in (SqlOptions(), SqlOptions(scheme="natural")):
        out = ShreddingPipeline(SCHEMA, options).run(query, DB)
        assert bag_equal(out, expected), options.scheme


@given(queries_with_bindings())
@_settings
def test_sql_pipeline_binds_host_params(query_and_bindings):
    """The PR 4 prepared-statement path under randomisation: running a
    parameterised query with ``params=bindings`` must equal evaluating the
    term with the placeholders substituted by literal constants."""
    from repro.nrc.ast import substitute_params
    from repro.pipeline.shredder import ShreddingPipeline
    from repro.sql.codegen import SqlOptions

    query, bindings = query_and_bindings
    expected = evaluate(substitute_params(query, bindings), DB)
    for options in (SqlOptions(), SqlOptions(scheme="natural")):
        compiled = ShreddingPipeline(SCHEMA, options).compile(query)
        out = compiled.run(DB, params=bindings)
        assert bag_equal(out, expected), options.scheme


@given(queries_with_nesting(max_depth=1))
@_settings
def test_loop_lifting_matches_semantics(query):
    from repro.baselines.looplifting import LoopLiftingPipeline

    out = LoopLiftingPipeline(SCHEMA).run(query, DB)
    assert bag_equal(out, evaluate(query, DB))


@given(queries_with_nesting())
@_settings
def test_let_insertion_theorem6(query):
    from repro.letins.semantics import run_let
    from repro.letins.translate import let_insert
    from repro.shred.indexes import flat_index_fn
    from repro.shred.paths import paths
    from repro.shred.semantics import run_shredded
    from repro.shred.translate import shred_query

    nf = normalise(query, SCHEMA)
    result_type = infer(query, SCHEMA)
    index = flat_index_fn(nf, DB, SCHEMA)
    for path in paths(result_type):
        shredded = shred_query(nf, path)
        assert run_let(let_insert(shredded), DB) == run_shredded(
            shredded, DB, index
        ), str(path)


@given(queries_with_nesting())
@_settings
def test_annotated_erasure_theorem19(query):
    from repro.shred.value_shred import annotated_eval, erase_annotated

    nf = normalise(query, SCHEMA)
    annotated = annotated_eval(nf, DB, SCHEMA)
    assert erase_annotated(annotated) == evaluate(nf_to_term(nf), DB)
