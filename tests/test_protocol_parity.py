"""Sync/async client parity on protocol v1.2 — one script, two transports.

PR 6 kept :class:`ServiceClient` and :class:`AsyncServiceClient` aligned
by hand; v1.2 adds the first *mutating* op (``insert`` + idempotency
keys), where a drift between the transports would corrupt data rather
than just annoy.  This suite drives the **same step script** through
both clients against the same live server and asserts the outcomes are
identical step by step: response shapes, ``applied`` verdicts, echoed
idempotency keys, structured error kinds (including the server-side
deadline), and transport-failure types against a dead endpoint.

Each transport gets its own identically-seeded server (sharing one would
let the first transport's inserts shift the second's query results — and
reusing a key across transports would *correctly* dedup, hiding a parity
break behind a false "applied: false" match).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import connect
from repro.data.organisation import figure3_database
from repro.errors import ServiceError
from repro.service import (
    AsyncServiceClient,
    ServiceClient,
    paper_registry,
    serve_in_background,
)
from repro.values import bag_equal

from .fault_injection import free_port, register_slow

#: (step label, client method, kwargs builder) — the builder takes the
#: transport's namespace so keys and declared-key ids never collide on
#: the shared server.
_STEPS = (
    ("ping", "ping", lambda ns: {}),
    ("execute-q1", "execute", lambda ns: {"query": "Q1"}),
    (
        "execute-params",
        "execute",
        lambda ns: {"query": "staff_above", "params": {"min_salary": 900}},
    ),
    (
        "insert-fresh",
        "insert",
        lambda ns: {
            "table": "departments",
            "rows": [{"id": 9000 + ns, "name": f"Parity{ns}"}],
            "idempotency_key": f"parity-{ns}-a",
        },
    ),
    (
        "insert-redelivered",
        "insert",
        lambda ns: {
            "table": "departments",
            "rows": [{"id": 9000 + ns, "name": f"Parity{ns}"}],
            "idempotency_key": f"parity-{ns}-a",
        },
    ),
    (
        "insert-autokey",
        "insert",
        lambda ns: {
            "table": "departments",
            "rows": [{"id": 9100 + ns, "name": f"ParityAuto{ns}"}],
        },
    ),
    (
        "insert-bad-rows",
        "insert",
        lambda ns: {"table": "departments", "rows": [{"wrong": 1}]},
    ),
    (
        "insert-bad-table",
        "insert",
        lambda ns: {"table": "no_such_table", "rows": []},
    ),
    ("execute-unknown", "execute", lambda ns: {"query": "no_such_query"}),
    (
        "slow-deadline",
        "execute",
        lambda ns: {"query": "slow_parity", "deadline_ms": 150},
    ),
)


def _normalise(label: str, result: object, kwargs: dict) -> object:
    """Strip the volatile parts so sync and async compare exactly."""
    if label == "ping":
        return {"protocol": result["protocol"], "shard": result.get("shard")}
    if label.startswith("insert"):
        sent = kwargs.get("idempotency_key")
        echoed = result.get("idempotency_key")
        return {
            "ok": result.get("ok"),
            "table": result.get("table"),
            "rows": result.get("rows"),
            "applied": result.get("applied"),
            # Auto-generated keys differ by construction; what must match
            # is the *contract*: the response echoes the key that was sent
            # (or the one the client minted).
            "key_echoed": bool(echoed) and (sent is None or echoed == sent),
        }
    return result  # execute: the nested rows themselves


async def _drive(client, namespace: int, awaited: bool) -> list:
    """Run the script; every step's outcome is ``("ok", payload)`` or
    ``("error", type name, structured kind)``."""
    outcomes = []
    for label, method, build in _STEPS:
        kwargs = build(namespace)
        try:
            result = getattr(client, method)(**kwargs)
            if awaited:
                result = await result
        except ServiceError as error:
            outcomes.append(
                (label, "error", type(error).__name__, error.kind)
            )
        else:
            outcomes.append(
                (label, "ok", _normalise(label, result, kwargs))
            )
    return outcomes


def _server():
    registry = paper_registry()
    register_slow(registry, "slow_parity", 1.0)
    db = figure3_database()
    return db, serve_in_background(connect(db), registry, pool_size=2)


def test_sync_and_async_clients_agree_step_for_step():
    sync_db, sync_handle = _server()
    async_db, async_handle = _server()
    try:
        sync_client = ServiceClient(
            sync_handle.host, sync_handle.port, timeout=5
        )
        try:
            sync_outcomes = asyncio.run(_drive(sync_client, 1, awaited=False))
        finally:
            sync_client.close()

        async def drive_async() -> list:
            client = AsyncServiceClient(
                async_handle.host, async_handle.port, timeout=5
            )
            try:
                return await _drive(client, 1, awaited=True)
            finally:
                await client.close()

        async_outcomes = asyncio.run(drive_async())
    finally:
        sync_handle.stop()
        async_handle.stop()

    assert len(sync_outcomes) == len(async_outcomes) == len(_STEPS)
    for sync_out, async_out in zip(sync_outcomes, async_outcomes):
        label = sync_out[0]
        if label.startswith("execute") and sync_out[1] == "ok":
            assert async_out[1] == "ok", f"{label}: {async_out}"
            assert bag_equal(sync_out[2], async_out[2]), label
        else:
            assert sync_out == async_out, (
                f"{label}: sync {sync_out!r} != async {async_out!r}"
            )
    # Both transports actually exercised the write path and both dedup'd.
    by_label = {entry[0]: entry for entry in sync_outcomes}
    assert by_label["insert-fresh"][2]["applied"] is True
    assert by_label["insert-redelivered"][2]["applied"] is False
    assert by_label["slow-deadline"][1] == "error"
    # Exactly one application per fresh key on each transport's store.
    assert sync_db.row_count("departments") == 4 + 2  # Fig. 3 + 2 applied
    assert async_db.row_count("departments") == 4 + 2


def test_in_process_insert_matches_wire_idempotency():
    """PR 10 (satellite 3): ``ShardedDatabase.insert`` journals through
    the same idempotency-key path as the wire op.  Before, an in-process
    insert without an explicit key skipped the journal entirely, so a
    retried batch double-applied — while the identical wire insert
    (whose client always mints a key) deduped.  Now both transports mint
    a key when the caller passes none and both answer a redelivery with
    ``applied: false`` and zero new rows."""
    from repro.data.organisation import organisation_placement
    from repro.shard import ShardedDatabase

    batch = [{"id": 9300, "name": "ParityShard"}]

    # In-process: first delivery applies, the minted key is recorded,
    # and re-sending the whole batch with it is a no-op everywhere.
    sdb = ShardedDatabase(figure3_database(), organisation_placement(), 2)
    assert sdb.insert("departments", batch) is True
    minted = sdb.last_insert_key
    assert minted  # the journal path ran even without a caller key
    assert (
        sdb.insert("departments", batch, idempotency_key=minted) is False
    )
    assert sdb.full.row_count("departments") == 4 + 1
    assert sum(db.row_count("departments") for db in sdb.shards) == 4 + 1

    # Wire: the same script through a live server — same verdicts, same
    # final row count.
    db, handle = _server()
    try:
        client = ServiceClient(handle.host, handle.port, timeout=5)
        try:
            first = client.insert("departments", batch)
            again = client.insert(
                "departments",
                batch,
                idempotency_key=first["idempotency_key"],
            )
        finally:
            client.close()
    finally:
        handle.stop()
    assert first["applied"] is True
    assert again["applied"] is False
    assert db.row_count("departments") == 4 + 1


def test_both_transports_fail_identically_against_a_dead_endpoint():
    port = free_port()  # bound and released: nothing listens here

    def sync_kind() -> str:
        client = ServiceClient("127.0.0.1", port, timeout=1, connect_now=False)
        try:
            with pytest.raises(ServiceError) as caught:
                client.ping(deadline_ms=500)
        finally:
            client.close()
        return type(caught.value).__name__

    async def async_kind() -> str:
        client = AsyncServiceClient("127.0.0.1", port, timeout=1)
        try:
            with pytest.raises(ServiceError) as caught:
                await client.ping(deadline_ms=500)
        finally:
            await client.close()
        return type(caught.value).__name__

    assert sync_kind() == asyncio.run(async_kind())
