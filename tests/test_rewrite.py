"""Tests for stage 1: symbolic evaluation ⇝c (App. C.1)."""

from __future__ import annotations

from repro.nrc import builders as b
from repro.nrc.ast import (
    App,
    Const,
    Empty,
    For,
    If,
    Lam,
    Project,
    Record,
    Return,
    Table,
    Union,
    Var,
)
from repro.normalise.rewrite import is_c_normal, symbolic_eval


class TestBetaRules:
    def test_beta_lambda(self):
        term = App(Lam("x", Var("x")), Const(1))
        assert symbolic_eval(term) == Const(1)

    def test_beta_projection(self):
        term = Project(Record((("a", Const(1)), ("b", Const(2)))), "b")
        assert symbolic_eval(term) == Const(2)

    def test_beta_if_true_false(self):
        assert symbolic_eval(If(Const(True), Const(1), Const(2))) == Const(1)
        assert symbolic_eval(If(Const(False), Const(1), Const(2))) == Const(2)

    def test_beta_for_return(self):
        term = For("x", Return(Const(1)), Return(Var("x")))
        assert symbolic_eval(term) == Return(Const(1))

    def test_nested_beta(self):
        # (λf. f 1) (λx. x + 1)  →  1 + 1
        term = App(
            Lam("f", App(Var("f"), Const(1))),
            Lam("x", b.add(Var("x"), Const(1))),
        )
        assert symbolic_eval(term) == b.add(Const(1), Const(1))


class TestCommutingConversions:
    def test_for_over_empty_source(self):
        term = For("x", Empty(), Return(Var("x")))
        assert symbolic_eval(term) == Empty()

    def test_for_over_union_source(self):
        term = For("x", Union(Table("t"), Table("u")), Return(Var("x")))
        out = symbolic_eval(term)
        assert out == Union(
            For("x", Table("t"), Return(Var("x"))),
            For("x", Table("u"), Return(Var("x"))),
        )

    def test_for_over_for_source(self):
        inner = For("y", Table("t"), Return(Var("y")))
        term = For("x", inner, Return(Var("x")))
        out = symbolic_eval(term)
        # for (x ← for (y ← t) return y) return x  →  for (y ← t) return y
        assert out == For("y", Table("t"), Return(Var("y")))

    def test_for_over_for_capture_avoidance(self):
        # for (x ← for (y ← t) return y) return ⟨a = x, b = y_free⟩ where the
        # body mentions a *free* y: the inner binder must be renamed.
        body = Return(Record((("a", Var("x")), ("b", Var("y")))))
        term = For("x", For("y", Table("t"), Return(Var("y"))), body)
        out = symbolic_eval(term)
        assert isinstance(out, For)
        assert out.var != "y"  # renamed to avoid capturing the free y

    def test_for_over_if_source(self):
        term = For(
            "x", If(Var("c"), Table("t"), Empty()), Return(Var("x"))
        )
        out = symbolic_eval(term)
        assert out == If(
            Var("c"),
            For("x", Table("t"), Return(Var("x"))),
            Empty(),
        )

    def test_projection_from_if(self):
        term = Project(
            If(Var("c"), Record((("a", Const(1)),)), Record((("a", Const(2)),))),
            "a",
        )
        assert symbolic_eval(term) == If(Var("c"), Const(1), Const(2))

    def test_application_of_if(self):
        # (if c then (λx.x) else (λx.x)) 1 — hoist, then β in both branches.
        identity = Lam("x", Var("x"))
        term = App(If(Var("c"), identity, identity), Const(1))
        assert symbolic_eval(term) == If(Var("c"), Const(1), Const(1))

    def test_if_in_if_condition(self):
        term = If(
            If(Var("c"), Const(True), Var("d")),
            Const(1),
            Const(2),
        )
        out = symbolic_eval(term)
        assert out == If(
            Var("c"), Const(1), If(Var("d"), Const(1), Const(2))
        )


class TestNormalForm:
    def test_reports_normal(self):
        term = For("x", Table("t"), Return(Var("x")))
        assert is_c_normal(term)
        assert symbolic_eval(term) == term

    def test_reports_redex(self):
        assert not is_c_normal(App(Lam("x", Var("x")), Const(1)))
        assert not is_c_normal(For("x", Return(Const(1)), Return(Var("x"))))

    def test_result_is_always_normal(self):
        from repro.data import queries

        for name, query in {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}.items():
            out = symbolic_eval(query)
            assert is_c_normal(out), f"{name} not ⇝c-normal after rewriting"

    def test_idempotent(self):
        from repro.data import queries

        once = symbolic_eval(queries.Q6)
        assert symbolic_eval(once) == once

    def test_preserves_semantics_q6(self):
        from repro.data import queries
        from repro.data.organisation import figure3_database
        from repro.nrc.semantics import evaluate
        from repro.values import bag_equal

        db = figure3_database()
        assert bag_equal(
            evaluate(queries.Q6, db), evaluate(symbolic_eval(queries.Q6), db)
        )

    def test_eliminates_higher_order(self):
        from repro.data import queries
        from repro.nrc.ast import subterms

        out = symbolic_eval(queries.Q2)
        assert not any(
            isinstance(sub, (Lam, App)) for sub in subterms(out)
        ), "λ/application survived symbolic evaluation"
