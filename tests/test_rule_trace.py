"""Tests for the optimizer's fired-rule trace.

``CompiledSql.fired_rules`` records which ``opt_*`` rules actually changed
each statement; ``CompiledQuery.fired_rules`` aggregates them per package
(plus ``opt_shared`` when scans were hoisted); ``Prepared.explain()`` and
``ExecutionStats.rules_fired`` surface them.  The trace also *documents* a
fact the optimizer docstring only claims: ``opt_pushdown`` and
``opt_flatten`` are inert on the flat scheme's own output (every generated
outer CTE computes a ROW_NUMBER, which both rules refuse to touch).
"""

from __future__ import annotations

import pytest

from repro.api import connect
from repro.backend.executor import ExecutionStats
from repro.data.organisation import figure3_database
from repro.data.queries import FLAT_QUERIES, NESTED_QUERIES
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.codegen import SqlOptions

from repro.data.organisation import ORGANISATION_SCHEMA as SCHEMA

ALL_QUERIES = {**FLAT_QUERIES, **NESTED_QUERIES}


class TestFiredRuleTrace:
    def test_optimizer_off_traces_nothing(self):
        compiled = ShreddingPipeline(SCHEMA, SqlOptions()).compile(
            NESTED_QUERIES["Q6"]
        )
        assert compiled.fired_rules == ()

    def test_q6_fires_dedup_and_prune(self):
        compiled = ShreddingPipeline(
            SCHEMA, SqlOptions(optimize=True)
        ).compile(NESTED_QUERIES["Q6"])
        assert "opt_dedup" in compiled.fired_rules
        assert "opt_prune" in compiled.fired_rules

    def test_trace_order_follows_rule_order(self):
        from repro.sql.optimizer import statement_rule_names

        order = [flag for flag, _ in statement_rule_names] + ["opt_shared"]
        for name, query in ALL_QUERIES.items():
            compiled = ShreddingPipeline(
                SCHEMA, SqlOptions(optimize=True)
            ).compile(query)
            fired = list(compiled.fired_rules)
            assert fired == sorted(fired, key=order.index), name

    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_pushdown_and_flatten_inert_on_pipeline_output(self, name):
        """The documented inertness, now machine-checked: every outer
        CTE/subquery the flat scheme generates carries a ROW_NUMBER, so
        the guarded pushdown and flattening rules never fire on it."""
        compiled = ShreddingPipeline(
            SCHEMA, SqlOptions(optimize=True)
        ).compile(ALL_QUERIES[name])
        assert "opt_pushdown" not in compiled.fired_rules
        assert "opt_flatten" not in compiled.fired_rules

    def test_pushdown_fires_on_hand_built_statement(self):
        """…but the rules are not dead code: a numbering-free hand-built
        statement does get its predicate pushed."""
        from repro.sql.ast import (
            BinOp,
            Col,
            CteRef,
            Lit,
            SelectCore,
            SelectItem,
            Statement,
            TableRef,
        )
        from repro.sql.optimizer import optimize_statement

        cte = SelectCore(
            (SelectItem(Col("d", "name"), "name"),),
            (TableRef("departments", "d"),),
            None,
        )
        main = SelectCore(
            (SelectItem(Col("c", "name"), "name"),),
            (CteRef("q1", "c"),),
            BinOp("=", Col("c", "name"), Lit("Sales")),
        )
        statement = Statement((("q1", cte),), (main,), ("name",), ())
        trace: list[str] = []
        optimize_statement(statement, SqlOptions(optimize=True), trace=trace)
        assert "opt_pushdown" in trace


class TestExplainAndStats:
    def test_explain_shows_fired_rules(self):
        with connect(figure3_database(), options=SqlOptions(optimize=True)) as s:
            report = s.explain(NESTED_QUERIES["Q6"])
        assert "rules fired" in report
        assert "opt_dedup" in report

    def test_explain_shows_inert_optimizer(self):
        # Flat single-statement queries give the optimizer nothing to do.
        flat = FLAT_QUERIES["QF2"]
        with connect(figure3_database(), options=SqlOptions(optimize=True)) as s:
            compiled = s.compile(flat)
            report = s.explain(flat)
        assert compiled.fired_rules == ()
        assert "none (all inert)" in report

    def test_explain_omits_rules_when_optimizer_off(self):
        with connect(figure3_database()) as s:
            report = s.explain(NESTED_QUERIES["Q6"])
        assert "rules fired" not in report

    def test_session_stats_accumulate_rules(self):
        with connect(
            figure3_database(), options=SqlOptions(optimize=True), cache=False
        ) as s:
            s.prepare(NESTED_QUERIES["Q6"]).compiled
            once = dict(s.stats.rules_fired)
            s.prepare(NESTED_QUERIES["Q6"]).compiled
            twice = dict(s.stats.rules_fired)
        assert once.get("opt_dedup", 0) >= 1
        assert twice["opt_dedup"] == 2 * once["opt_dedup"]

    def test_cache_hits_still_record_rules(self):
        from repro.pipeline.plan_cache import PlanCache

        with connect(
            figure3_database(),
            options=SqlOptions(optimize=True),
            cache=PlanCache(),
        ) as s:
            s.prepare(NESTED_QUERIES["Q6"]).compiled
            s.prepare(NESTED_QUERIES["Q6"]).compiled
            assert s.stats.cache_hits >= 1
            assert s.stats.rules_fired.get("opt_dedup", 0) >= 2

    def test_stats_merge_sums_rule_counts(self):
        left = ExecutionStats()
        left.rules_fired = {"opt_fold": 1, "opt_prune": 2}
        right = ExecutionStats()
        right.rules_fired = {"opt_fold": 2}
        left.merge(right)
        assert left.rules_fired == {"opt_fold": 3, "opt_prune": 2}
