"""The §3/§7 running example, pinned end to end (experiment E1).

Covers: the composed query Q(Qorg), Qcomp's shape, the generated SQL's
q′1/q′2 structure, and the final stitched value on the Fig. 3 instance.
"""

from __future__ import annotations

import pytest

from repro.data.queries import Q6, q_org, q_people
from repro.nrc.semantics import evaluate
from repro.pipeline.shredder import ShreddingPipeline
from repro.values import bag_equal

EXPECTED_RESULT = [
    {
        "department": "Product",
        "people": [
            {"name": "Bert", "tasks": ["build"]},
            {"name": "Pat", "tasks": ["buy"]},
        ],
    },
    {"department": "Quality", "people": []},
    {"department": "Research", "people": []},
    {
        "department": "Sales",
        "people": [
            {"name": "Erik", "tasks": ["call", "enthuse"]},
            {"name": "Fred", "tasks": ["call"]},
            {"name": "Sue", "tasks": ["buy"]},
        ],
    },
]


class TestComposition:
    def test_q6_is_q_composed_with_qorg(self, db):
        composed = q_people(q_org())
        assert bag_equal(evaluate(composed, db), evaluate(Q6, db))

    def test_direct_evaluation_matches_paper(self, db):
        assert bag_equal(evaluate(Q6, db), EXPECTED_RESULT)


class TestGeneratedSql:
    @pytest.fixture
    def sql(self, schema):
        return dict(ShreddingPipeline(schema).compile(Q6).sql_by_path)

    def test_three_queries(self, sql):
        assert set(sql) == {"ε", "↓.people", "↓.people.↓.tasks"}

    def test_q1_prime_shape(self, sql):
        """§7's q′1: a single SELECT over departments with one ROW_NUMBER."""
        q1 = sql["ε"]
        assert q1.count("SELECT") == 1
        assert q1.count("ROW_NUMBER") == 1
        assert "departments" in q1 and "UNION ALL" not in q1

    def test_q2_prime_shape(self, sql):
        """§7's q′2: WITH-bound department numbering, two UNION ALL branches
        (employees outliers ⊎ client contacts), static tags as literals."""
        q2 = sql["↓.people"]
        assert q2.startswith("WITH")
        assert q2.count("UNION ALL") == 1
        assert "'b'" in q2 and "'d'" in q2 and "'a'" in q2
        assert "employees" in q2 and "contacts" in q2
        assert "salary" in q2 and "1000000" in q2

    def test_q3_prime_buy_branch(self, sql):
        """The innermost query: the contacts branch returns the literal
        'buy' with no task generator."""
        q3 = sql["↓.people.↓.tasks"]
        assert "'buy'" in q3
        assert q3.count("UNION ALL") == 1

    def test_row_numbers_delayed_to_last_stage(self, sql):
        """The paper's design point: OLAP only where an inner index is
        needed — the innermost query's SELECT has no ROW_NUMBER item."""
        q3 = sql["↓.people.↓.tasks"]
        final_select = q3.rsplit("UNION ALL", 1)[1]
        assert "ROW_NUMBER" not in final_select


class TestEndToEnd:
    def test_stitched_result_matches_paper(self, schema, db):
        out = ShreddingPipeline(schema).run(Q6, db)
        assert bag_equal(out, EXPECTED_RESULT)

    def test_every_system_agrees(self, schema, db):
        from repro.baselines.looplifting import loop_lift_run
        from repro.baselines.naive import avalanche_run
        from repro.sql.codegen import SqlOptions

        outputs = {
            "shredding-flat": ShreddingPipeline(schema).run(Q6, db),
            "shredding-natural": ShreddingPipeline(
                schema, SqlOptions(scheme="natural")
            ).run(Q6, db),
            "loop-lifting": loop_lift_run(Q6, db),
            "avalanche": avalanche_run(Q6, db),
        }
        for name, out in outputs.items():
            assert bag_equal(out, EXPECTED_RESULT), name
