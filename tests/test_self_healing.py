"""Self-healing shard groups, proven end to end (PR 7 acceptance).

Three layers:

* :class:`~repro.shard.supervisor.Supervisor` as a pure state machine —
  stub processes and an injected clock drive restart backoff, crash-loop
  detection and quiet-window forgiveness deterministically;
* exactly-once writes under injected connection faults — an ``insert``
  whose acknowledgement is truncated or swallowed (``FaultyProxy``) is
  re-sent with its idempotency key and applies **once**, on both the
  blocking and the asyncio transport (row counts asserted on the store);
* the headline kill/recover differential — replication factor 2,
  ``kill -9`` the primary mid-workload: **zero** queries fall back to
  the full-copy shard (the sibling replica absorbs them, counters
  asserted exactly), the supervisor restarts the dead process, and the
  restarted shard serves every pre-crash insert from its durable store.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import connect
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.data.queries import NESTED_QUERIES
from repro.errors import (
    DeadlineExceededError,
    ServiceConnectionError,
    ShardUnavailableError,
)
from repro.service import (
    AsyncServiceClient,
    RetryPolicy,
    ServiceClient,
    paper_registry,
    serve_in_background,
)
from repro.shard import ShardedServiceClient, Supervisor, shard_for, spawn_group
from repro.values import assert_bag_equal, bag_equal

from .fault_injection import FaultyProxy

PLACEMENT = organisation_placement()
REGISTRY = paper_registry()


# --------------------------------------------------------------------------
# Supervisor state machine: stub processes, injected clock, exact events.


class StubProcess:
    """Pretends to be a ShardProcess: dies and restarts on command."""

    def __init__(self, label: str = "stub/1", fail_starts: int = 0) -> None:
        self.label = label
        self.port = 0
        self.alive = True
        self.starts = 0
        self.fail_starts = fail_starts

    def poll(self):
        return None if self.alive else -9

    def start(self) -> None:
        self.starts += 1
        if self.fail_starts > 0:
            self.fail_starts -= 1
            raise RuntimeError("came up dead")
        self.alive = True

    def kill(self) -> None:
        self.alive = False

    def terminate(self, grace: float = 10.0) -> None:
        self.alive = False


def _supervised(stub, **kwargs):
    now = [0.0]
    defaults = dict(
        clock=lambda: now[0],
        backoff_base=1.0,
        backoff_cap=8.0,
        crash_loop_threshold=4,
        crash_loop_window=100.0,
    )
    defaults.update(kwargs)
    return Supervisor([stub], **defaults), now


class TestSupervisorStateMachine:
    def test_restart_fires_only_after_the_backoff(self):
        stub = StubProcess()
        supervisor, now = _supervised(stub)
        assert supervisor.poll() == []  # healthy: nothing to do

        stub.kill()
        (died,) = supervisor.poll()
        assert died["event"] == "died"
        assert died["returncode"] == -9
        assert died["backoff"] == 1.0

        now[0] = 0.5
        assert supervisor.poll() == []  # backoff not elapsed
        now[0] = 1.0
        (restarted,) = supervisor.poll()
        assert restarted["event"] == "restarted"
        assert stub.alive and stub.starts == 1

    def test_backoff_doubles_per_death_and_caps(self):
        stub = StubProcess()
        # Wide threshold: five deaths inside the window without tripping
        # crash-loop detection, so every death reports its backoff.
        supervisor, now = _supervised(stub, crash_loop_threshold=10)
        backoffs = []
        for round_index in range(5):
            stub.kill()
            (died,) = supervisor.poll()
            backoffs.append(died["backoff"])
            now[0] += died["backoff"]
            (restarted,) = supervisor.poll()
            assert restarted["event"] == "restarted"
            now[0] += 0.001
        assert backoffs == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_crash_loop_marks_failed_and_stops_restarting(self):
        stub = StubProcess()
        supervisor, now = _supervised(stub, crash_loop_threshold=3)
        for _ in range(2):
            stub.kill()
            (died,) = supervisor.poll()
            now[0] += died["backoff"]
            supervisor.poll()
            now[0] += 0.001
        stub.kill()
        (looped,) = supervisor.poll()
        assert looped["event"] == "crash-loop"
        assert looped["deaths"] == 3
        starts_before = stub.starts
        now[0] += 1000.0
        assert supervisor.poll() == []  # failed: left down for good
        assert stub.starts == starts_before
        (status,) = supervisor.status()
        assert status["failed"] and not status["alive"]

    def test_quiet_window_forgives_old_deaths(self):
        stub = StubProcess()
        supervisor, now = _supervised(stub, crash_loop_window=10.0)
        stub.kill()
        (died,) = supervisor.poll()
        now[0] += died["backoff"]
        supervisor.poll()  # restarted

        now[0] += 11.0  # a full quiet window of uptime
        supervisor.poll()
        stub.kill()
        (died_again,) = supervisor.poll()
        # History was forgiven: back to the base backoff, not doubled.
        assert died_again["backoff"] == 1.0

    def test_failed_restart_is_retried_with_more_backoff(self):
        stub = StubProcess(fail_starts=1)
        supervisor, now = _supervised(stub)
        stub.kill()
        (died,) = supervisor.poll()
        now[0] += died["backoff"]
        (failed,) = supervisor.poll()
        assert failed["event"] == "restart-failed"
        assert not stub.alive
        # The next step observes the still-dead process as a new death…
        (died_again,) = supervisor.poll()
        assert died_again["event"] == "died"
        assert died_again["backoff"] == 2.0
        now[0] += died_again["backoff"]
        (restarted,) = supervisor.poll()  # …and this start succeeds.
        assert restarted["event"] == "restarted"
        assert stub.alive

    def test_background_loop_restarts_a_real_stub(self):
        stub = StubProcess()
        supervisor = Supervisor(
            [stub], backoff_base=0.01, check_interval=0.01
        )
        supervisor.run_in_background()
        try:
            stub.kill()
            deadline = time.monotonic() + 5
            while not stub.alive and time.monotonic() < deadline:
                time.sleep(0.01)
            assert stub.alive
        finally:
            supervisor.stop(drain_grace=0.1)
        assert not stub.alive  # stop() drains the fleet


# --------------------------------------------------------------------------
# Exactly-once writes through injected connection faults, both transports.


def _write_service():
    registry = paper_registry()
    db = figure3_database()
    handle = serve_in_background(connect(db), registry, pool_size=2)
    proxy = FaultyProxy(handle.host, handle.port, label="writes")
    return db, handle, proxy


class TestExactlyOnceWrites:
    def test_sync_truncated_ack_retry_applies_once(self):
        db, handle, proxy = _write_service()
        client = ServiceClient(
            proxy.host,
            proxy.port,
            timeout=2,
            retry=RetryPolicy(attempts=2, base_delay=0.01),
        )
        try:
            before = db.row_count("departments")
            key = "eo-sync-truncate"
            rows = [{"id": 700, "name": "EdgeSync"}]
            proxy.set_mode("truncate")
            # The request frame gets through (the server applies), the
            # acknowledgement is cut mid-frame; the transparent transport
            # retry re-delivers the same key and is cut again.
            with pytest.raises(ServiceConnectionError):
                client.insert("departments", rows, idempotency_key=key)
            assert proxy.faults_injected >= 1

            proxy.set_mode("pass")
            response = client.insert(
                "departments", rows, idempotency_key=key
            )
            assert response["ok"] is True
            assert response["applied"] is False  # journal dedup'd the re-send
            assert response["idempotency_key"] == key
            assert db.row_count("departments") == before + 1
        finally:
            client.close()
            proxy.close()
            handle.stop()

    def test_sync_dropped_ack_deadline_then_resend_applies_once(self):
        db, handle, proxy = _write_service()
        client = ServiceClient(proxy.host, proxy.port, timeout=2)
        try:
            before = db.row_count("departments")
            key = "eo-sync-drop"
            rows = [{"id": 701, "name": "DropSync"}]
            proxy.set_mode("drop")
            with pytest.raises(DeadlineExceededError):
                client.insert(
                    "departments", rows, idempotency_key=key, deadline_ms=300
                )
            proxy.set_mode("pass")
            response = client.insert(
                "departments", rows, idempotency_key=key
            )
            assert response["applied"] is False
            assert db.row_count("departments") == before + 1
        finally:
            client.close()
            proxy.close()
            handle.stop()

    def test_async_faulted_ack_then_resend_applies_once(self):
        db, handle, proxy = _write_service()

        async def scenario() -> None:
            client = AsyncServiceClient(proxy.host, proxy.port, timeout=2)
            try:
                before = db.row_count("departments")
                key = "eo-async"
                rows = [{"id": 702, "name": "EdgeAsync"}]
                proxy.set_mode("truncate")
                with pytest.raises(ServiceConnectionError):
                    await client.insert(
                        "departments", rows, idempotency_key=key
                    )
                proxy.set_mode("pass")
                response = await client.insert(
                    "departments", rows, idempotency_key=key
                )
                assert response["ok"] is True
                assert response["applied"] is False
                assert db.row_count("departments") == before + 1

                proxy.set_mode("drop")
                with pytest.raises(DeadlineExceededError):
                    await client.insert(
                        "departments",
                        [{"id": 703, "name": "DropAsync"}],
                        idempotency_key="eo-async-drop",
                        deadline_ms=300,
                    )
                proxy.set_mode("pass")
                response = await client.insert(
                    "departments",
                    [{"id": 703, "name": "DropAsync"}],
                    idempotency_key="eo-async-drop",
                )
                assert response["applied"] is False
                assert db.row_count("departments") == before + 2
            finally:
                await client.close()

        try:
            asyncio.run(scenario())
        finally:
            proxy.close()
            handle.stop()


# --------------------------------------------------------------------------
# The headline: kill -9 a primary under replication 2 — the replica
# absorbs (zero fallbacks), the supervisor restarts, the durable store
# recovers every pre-crash insert.


class TestReplicaKillRecoverDurable:
    def test_primary_kill_replica_absorbs_restart_recovers(self, tmp_path):
        # Routing facts the exact counters below rest on.
        assert shard_for("ops", 2) == 0
        assert shard_for("research", 2) == 0

        groups, fallback = spawn_group(
            2,
            replication=2,
            pool=1,
            data_dir=tmp_path / "state",
            log_dir=tmp_path / "logs",
        )
        client = ShardedServiceClient(
            [[process.address for process in group] for group in groups],
            fallback.address,
            placement=PLACEMENT.with_replication(2),
            registry=REGISTRY,
            schema=ORGANISATION_SCHEMA,
            timeout=5,
            deadline_ms=5000,
            retry=RetryPolicy(attempts=2, base_delay=0.01),
            breaker_threshold=1,
            breaker_reset=0.5,
        )
        # The single-session oracle mirrors every insert the deployment
        # applies, so nested-multiset equality stays exact throughout.
        oracle = connect(figure3_database())
        supervisor = None
        try:
            # --- pre-crash write, over the wire, durable everywhere ----
            response = client.insert(
                "departments",
                [{"id": 900, "name": "ops"}],
                idempotency_key="pre-crash-1",
            )
            oracle.insert("departments", [{"id": 900, "name": "ops"}])
            assert response["applied"] is True
            # fallback + both replicas of owning shard 0 acknowledged
            assert response["endpoints"] == 3

            listing = client.execute("dept_staff", params={"dept": "ops"})
            assert bag_equal(listing, [{"department": "ops", "staff": []}])
            # Routed to shard 0; latencies unmeasured, so the primary
            # wins the tie.
            assert client.replica_requests[0] == [1, 0]

            expected_q4 = oracle.run(NESTED_QUERIES["Q4"]).value
            for _ in range(3):
                assert_bag_equal(
                    client.execute("Q4"), expected_q4, "healthy fan-out"
                )
            assert client.replica_requests == [[4, 0], [3, 0]]

            # --- kill -9 the primary of shard 0, mid-workload ----------
            groups[0][0].kill()

            for _ in range(4):
                assert_bag_equal(
                    client.execute("Q4"), expected_q4, "primary down"
                )
            snapshot = client.stats_snapshot()
            # ZERO queries fell back to the full-copy shard: the sibling
            # replica absorbed the whole workload.
            assert snapshot["fallback_requests"] == 0
            assert snapshot["failover_retries"] == 0
            assert snapshot["failover_reroutes"] == 0
            # Exactly one sub-request was rerouted mid-flight (the first
            # Q4 after the kill); after that the open breaker routes
            # every read to the sibling proactively.
            assert snapshot["replica_failovers"] == 1
            assert snapshot["replica_requests"] == [[4, 4], [7, 0]]
            assert snapshot["retries"] >= 1
            # The logical shard is NOT down — one replica still stands.
            assert snapshot["down_shards"] == []
            assert snapshot["endpoints"]["0/2"]["breaker"]["state"] == "open"
            assert (
                snapshot["endpoints"]["0.1/2"]["breaker"]["state"] == "closed"
            )

            # A write needing the dead primary raises with the shard, op
            # and key named — re-sent whole after recovery (below).
            with pytest.raises(ShardUnavailableError) as caught:
                client.insert(
                    "departments",
                    [{"id": 901, "name": "research"}],
                    idempotency_key="partial-1",
                )
            assert caught.value.shard == "0/2"
            assert caught.value.op == "insert"

            # --- the supervisor restarts the dead process --------------
            supervisor = Supervisor(
                [groups[0][0]], backoff_base=0.05, check_interval=0.05
            )
            (died,) = supervisor.poll()
            assert died["event"] == "died"
            deadline = time.monotonic() + 60
            while groups[0][0].poll() is not None:
                assert time.monotonic() < deadline, "supervisor never restarted"
                supervisor.poll()
                time.sleep(0.05)
            assert supervisor.status()[0]["restarts"] == 1

            # --- the client heals: breaker cooldown + health check -----
            time.sleep(0.6)
            deadline = time.monotonic() + 15
            while not client.check_health().get("0/2"):
                assert time.monotonic() < deadline, "restarted shard not healthy"
                time.sleep(0.2)
            assert client.down_shards() == frozenset()

            # --- durable recovery: the restarted PRIMARY itself serves
            # the pre-crash insert (seed data alone has no "ops") -------
            direct = ServiceClient(
                "127.0.0.1", groups[0][0].port, timeout=5
            )
            try:
                recovered = direct.execute(
                    "dept_staff", params={"dept": "ops"}
                )
            finally:
                direct.close()
            assert bag_equal(
                recovered, [{"department": "ops", "staff": []}]
            )

            # --- the failed write converges on redelivery --------------
            response = client.insert(
                "departments",
                [{"id": 901, "name": "research"}],
                idempotency_key="partial-1",
            )
            oracle.insert("departments", [{"id": 901, "name": "research"}])
            # The fallback applied it during the failed attempt; the
            # journal makes the redelivery a no-op there while the
            # replicas catch up.
            assert response["ok"] is True
            assert response["applied"] is False
            assert response["endpoints"] == 3

            expected_q4 = oracle.run(NESTED_QUERIES["Q4"]).value
            assert_bag_equal(
                client.execute("Q4"), expected_q4, "converged after recovery"
            )
        finally:
            client.close()
            if supervisor is not None:
                supervisor.stop(drain_grace=2.0)
            for process in [fallback] + [p for g in groups for p in g]:
                process.close()
            oracle.close()
