"""Tests for the denotational semantics N⟦−⟧ (Fig. 2)."""

from __future__ import annotations

import pytest

from repro.errors import EvaluationError
from repro.nrc import builders as b
from repro.nrc import stdlib
from repro.nrc.ast import Empty, Var
from repro.nrc.semantics import evaluate
from repro.values import bag_equal


class TestBaseForms:
    def test_const(self, db):
        assert evaluate(b.const(5), db) == 5

    def test_env(self, db):
        assert evaluate(Var("x"), db, {"x": 7}) == 7

    def test_unbound(self, db):
        with pytest.raises(EvaluationError):
            evaluate(Var("x"), db)

    def test_prim(self, db):
        assert evaluate(b.add(b.const(2), b.const(3)), db) == 5
        assert evaluate(b.and_(b.TRUE, b.FALSE), db) is False

    def test_record_and_projection(self, db):
        r = b.record(a=b.const(1), z=b.const("s"))
        assert evaluate(r, db) == {"a": 1, "z": "s"}
        assert evaluate(r["a"], db) == 1

    def test_if(self, db):
        assert evaluate(b.if_(b.TRUE, b.const(1), b.const(2)), db) == 1
        assert evaluate(b.if_(b.FALSE, b.const(1), b.const(2)), db) == 2

    def test_if_non_bool(self, db):
        with pytest.raises(EvaluationError):
            evaluate(b.if_(b.const(1), b.const(1), b.const(2)), db)


class TestBags:
    def test_return_empty_union(self, db):
        assert evaluate(b.ret(b.const(1)), db) == [1]
        assert evaluate(Empty(), db) == []
        out = evaluate(b.union(b.ret(b.const(1)), b.ret(b.const(1))), db)
        assert out == [1, 1]  # multiplicities add (bag union)

    def test_for_concatenates(self, db):
        q = b.for_(
            "x",
            b.bag_of(b.const(1), b.const(2)),
            lambda x: b.union(b.ret(x), b.ret(x)),
        )
        assert bag_equal(evaluate(q, db), [1, 1, 2, 2])

    def test_empty_test(self, db):
        assert evaluate(b.is_empty(Empty()), db) is True
        assert evaluate(b.is_empty(b.ret(b.const(1))), db) is False

    def test_table_interpretation_is_canonically_ordered(self, db):
        rows = evaluate(b.table("departments"), db)
        names = [row["name"] for row in rows]
        assert names == sorted(names)

    def test_table_rows_are_copies(self, db):
        rows = evaluate(b.table("departments"), db)
        rows[0]["name"] = "Mutated"
        again = evaluate(b.table("departments"), db)
        assert again[0]["name"] != "Mutated"


class TestFunctions:
    def test_beta(self, db):
        term = b.app(b.lam("x", lambda x: b.add(x, b.const(1))), b.const(41))
        assert evaluate(term, db) == 42

    def test_closure_captures_environment(self, db):
        # (λx. λy. x + y) 1 2
        term = b.app(
            b.lam("x", lambda x: b.lam("y", lambda y: b.add(Var("x"), y))),
            b.const(1),
            b.const(2),
        )
        assert evaluate(term, db) == 3

    def test_apply_non_function(self, db):
        with pytest.raises(EvaluationError):
            evaluate(b.app(b.const(1), b.const(2)), db)


class TestQueriesOverFigure3:
    def test_flat_selection(self, db):
        q = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(b.lt(e["salary"], b.const(1000)), b.ret(e["name"])),
        )
        assert bag_equal(evaluate(q, db), ["Bert", "Fred"])

    def test_join(self, db):
        q = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.for_(
                "t",
                b.table("tasks"),
                lambda t: b.where(
                    b.eq(e["name"], t["employee"]), b.ret(t["task"])
                ),
            ),
        )
        out = evaluate(q, db)
        assert len(out) == 14  # every task row joins exactly one employee

    def test_tasks_of_employee_nested(self, db):
        # employeesOfDept-style nested result for the Sales department.
        q = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(
                b.eq(e["dept"], b.const("Sales")),
                b.ret(
                    b.record(
                        name=e["name"],
                        tasks=b.for_(
                            "t",
                            b.table("tasks"),
                            lambda t: b.where(
                                b.eq(t["employee"], e["name"]),
                                b.ret(t["task"]),
                            ),
                        ),
                    )
                ),
            ),
        )
        expected = [
            {"name": "Erik", "tasks": ["call", "enthuse"]},
            {"name": "Fred", "tasks": ["call"]},
            {"name": "Gina", "tasks": ["call", "dissemble"]},
        ]
        assert bag_equal(evaluate(q, db), expected)

    def test_stdlib_contains(self, db):
        tasks_of_cora = b.for_(
            "t",
            b.table("tasks"),
            lambda t: b.where(
                b.eq(t["employee"], b.const("Cora")), b.ret(t["task"])
            ),
        )
        assert evaluate(stdlib.contains(tasks_of_cora, b.const("abstract")), db)
        assert not evaluate(
            stdlib.contains(tasks_of_cora, b.const("buy")), db
        )

    def test_stdlib_all(self, db):
        # All Research employees can "abstract" (Cora and Drew both can).
        research = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(b.eq(e["dept"], b.const("Research")), b.ret(e)),
        )
        can_abstract = b.lam(
            "e",
            lambda e: stdlib.contains(
                b.for_(
                    "t",
                    b.table("tasks"),
                    lambda t: b.where(
                        b.eq(t["employee"], e["name"]), b.ret(t["task"])
                    ),
                ),
                b.const("abstract"),
            ),
        )
        assert evaluate(stdlib.all_(research, can_abstract), db) is True

    def test_empty_database(self, empty_db):
        q = b.for_("e", b.table("employees"), lambda e: b.ret(e["name"]))
        assert evaluate(q, empty_db) == []
