"""The query service end to end: server + client in one process.

The acceptance path: paper queries Q1–Q6 round-trip the wire with results
identical to ``Session.run``; a prepared parameterised query executed with
different host parameters shows exactly one plan-cache miss and then hits.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.api import connect, param
from repro.data.organisation import figure3_database
from repro.data.queries import NESTED_QUERIES
from repro.errors import ServiceError
from repro.pipeline.plan_cache import PlanCache
from repro.service import (
    AsyncServiceClient,
    QueryRegistry,
    ServiceClient,
    paper_registry,
    serve_in_background,
)
from repro.service.protocol import pack_frame, split_frame
from repro.values import bag_equal

QUERY_NAMES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]


@pytest.fixture(scope="module")
def service():
    """One server over the Fig. 3 instance, shared by the module's tests."""
    session = connect(figure3_database(), cache=PlanCache())
    registry = paper_registry()
    builder_session = session  # fluent sources bind to the serving session
    lo = param("min_salary", "int")
    registry.register(
        "fluent_above",
        builder_session.table("employees", alias="e")
        .where(lambda e: e.salary > lo)
        .select("name", "salary"),
    )
    handle = serve_in_background(session, registry, pool_size=3)
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def client(service):
    with ServiceClient(service.host, service.port) as c:
        yield c


class TestWireResults:
    @pytest.mark.parametrize("name", QUERY_NAMES)
    def test_paper_queries_round_trip(self, service, client, name):
        served = client.execute(name)
        direct = service.server.session.run(NESTED_QUERIES[name]).value
        assert bag_equal(served, direct), name

    @pytest.mark.parametrize("engine", ["per-path", "batched", "parallel"])
    def test_engines_agree_over_the_wire(self, service, client, engine):
        served = client.execute("Q4", engine=engine)
        direct = service.server.session.run(NESTED_QUERIES["Q4"]).value
        assert bag_equal(served, direct)

    def test_execute_full_reports_engine_and_stats(self, client):
        response = client.execute_full("Q1")
        assert response["engine"] == "batched"
        assert response["stats"]["queries"] >= 1
        assert response["stats"]["rows_fetched"] >= len(response["rows"])


class TestPreparedParameterised:
    def test_one_miss_then_hits_with_rebinding(self, service, client):
        cache = service.server.session.pipeline.cache
        before = cache.stats()
        info = client.prepare("staff_above")
        assert info["params"] == {"min_salary": "Int"}
        rows_900 = client.execute("staff_above", params={"min_salary": 900})
        rows_5k = client.execute("staff_above", params={"min_salary": 50000})
        after = cache.stats()
        # Exactly one cold compile for this shape; every further consult
        # (including the re-bound second execute) is a hit.
        assert after["misses"] - before["misses"] == 1
        assert after["hits"] - before["hits"] == 2
        assert {row["name"] for row in rows_5k} < {
            row["name"] for row in rows_900
        }

    def test_fluent_registered_query_rebinds(self, client):
        low = client.execute("fluent_above", params={"min_salary": 0})
        high = client.execute("fluent_above", params={"min_salary": 10**8})
        assert len(high) < len(low)

    def test_parameterised_nested_query(self, client):
        rows = client.execute("dept_staff", params={"dept": "Research"})
        assert len(rows) == 1
        assert rows[0]["department"] == "Research"
        assert {staff["name"] for staff in rows[0]["staff"]} == {"Cora", "Drew"}


class TestProtocolSurface:
    def test_explain_mentions_engine_and_type(self, client):
        text = client.explain("Q6")
        assert "engine" in text and "result type" in text

    def test_stats_surface(self, client):
        client.execute("Q1")
        stats = client.stats()
        assert "Q1" in stats["queries"]
        assert stats["server"]["pool_size"] == 3
        assert stats["server"]["requests"]["execute"] >= 1
        assert stats["session"]["queries"] >= 1
        assert stats["plan_cache"]["entries"] >= 1

    def test_unknown_query_is_a_structured_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.execute("no_such_query")
        assert excinfo.value.kind == "UnknownQueryError"

    def test_missing_param_relays_shredding_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.execute("staff_above")
        assert excinfo.value.kind == "ShreddingError"

    def test_bad_engine_relays_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.execute("Q1", engine="warp-drive")
        assert excinfo.value.kind == "ShreddingError"

    def test_unknown_op_is_rejected_in_frame(self, client):
        with pytest.raises(ServiceError, match="unknown op"):
            client.request({"op": "drop_tables"})

    def test_malformed_frame_gets_an_error_frame(self, service):
        import socket
        import struct

        with socket.create_connection((service.host, service.port), 10) as raw:
            raw.sendall(struct.pack(">I", 9) + b"not json!")
            prefix = raw.recv(4)
            (length,) = struct.unpack(">I", prefix)
            body = b""
            while len(body) < length:
                body += raw.recv(length - len(body))
            response = split_frame(body)
        assert response["ok"] is False
        assert "malformed" in response["error"]["message"]

    def test_oversized_length_prefix_answers_then_hangs_up(self, service):
        # A corrupt/oversized length prefix desyncs the byte stream: the
        # server must answer with an error frame and close the connection
        # rather than parse payload bytes as the next length.
        import socket
        import struct

        with socket.create_connection((service.host, service.port), 10) as raw:
            raw.settimeout(10)
            raw.sendall(struct.pack(">I", 2**31))  # 2 GiB "frame"
            prefix = raw.recv(4)
            (length,) = struct.unpack(">I", prefix)
            body = b""
            while len(body) < length:
                body += raw.recv(length - len(body))
            response = split_frame(body)
            assert response["ok"] is False
            assert "limit" in response["error"]["message"]
            assert raw.recv(1) == b""  # server closed the stream

    def test_frame_round_trip(self):
        payload = {"op": "execute", "query": "Q1", "params": {"x": 1}}
        frame = pack_frame(payload)
        assert split_frame(frame[4:]) == payload

    def test_close_op_ends_the_connection(self, service):
        client = ServiceClient(service.host, service.port)
        client.execute("Q1")
        client.close()  # sends the close op and drops the socket
        with pytest.raises((ServiceError, OSError)):
            client.request({"op": "stats"})


class TestAsyncClient:
    def test_async_client_round_trip(self, service):
        async def go():
            async with AsyncServiceClient(service.host, service.port) as client:
                info = await client.prepare("Q2")
                rows = await client.execute("Q2")
                stats = await client.stats()
                return info, rows, stats

        info, rows, stats = asyncio.run(go())
        direct = service.server.session.run(NESTED_QUERIES["Q2"]).value
        assert info["ok"] and info["statements"] >= 1
        assert bag_equal(rows, direct)
        assert stats["ok"]

    def test_many_async_clients_interleave(self, service):
        async def one(name):
            async with AsyncServiceClient(service.host, service.port) as client:
                return name, await client.execute(name)

        async def go():
            return await asyncio.gather(*(one(name) for name in QUERY_NAMES))

        for name, served in asyncio.run(go()):
            direct = service.server.session.run(NESTED_QUERIES[name]).value
            assert bag_equal(served, direct), name


class TestConcurrentClients:
    def test_cold_start_concurrent_clients(self):
        # No warm-up: the very first executions of different shapes arrive
        # concurrently, so index DDL/ANALYZE on the writer races active
        # reader statements (shared-cache SQLITE_LOCKED).  Advisory DDL
        # must skip, not fail the requests.
        session = connect(figure3_database(), cache=PlanCache())
        direct = {
            name: session.run(NESTED_QUERIES[name]).value
            for name in QUERY_NAMES
        }
        cold = connect(figure3_database(), cache=PlanCache())
        failures: list = []
        barrier = threading.Barrier(len(QUERY_NAMES))

        def worker(name: str) -> None:
            try:
                with ServiceClient(handle.host, handle.port) as client:
                    barrier.wait(timeout=30)
                    for _ in range(3):
                        served = client.execute(name)
                        if not bag_equal(served, direct[name]):
                            failures.append((name, "mismatch"))
            except Exception as error:  # noqa: BLE001
                failures.append((name, repr(error)))

        with serve_in_background(cold, paper_registry(), pool_size=6) as handle:
            threads = [
                threading.Thread(target=worker, args=(name,))
                for name in QUERY_NAMES
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert not failures, failures

    def test_threaded_clients_get_consistent_results(self, service):
        direct = {
            name: service.server.session.run(NESTED_QUERIES[name]).value
            for name in QUERY_NAMES
        }
        failures: list = []

        def worker(offset: int) -> None:
            try:
                with ServiceClient(service.host, service.port) as client:
                    for i in range(6):
                        name = QUERY_NAMES[(offset + i) % len(QUERY_NAMES)]
                        served = client.execute(name)
                        if not bag_equal(served, direct[name]):
                            failures.append((name, "mismatch"))
            except Exception as error:  # noqa: BLE001 — collect, don't die
                failures.append((offset, repr(error)))

        threads = [
            threading.Thread(target=worker, args=(offset,)) for offset in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures


class TestServerLifecycle:
    def test_same_server_restarts_cleanly(self):
        # stop() then start() on one QueryServer: the stopped flag resets,
        # leases rebuild, and requests serve normally again.
        from repro.service import QueryServer

        session = connect(figure3_database(), cache=PlanCache())
        server = QueryServer(session, paper_registry(), pool_size=2)
        direct = session.run(NESTED_QUERIES["Q1"]).value

        async def cycle() -> list:
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                __import__("repro.service.protocol", fromlist=["pack_frame"])
                .pack_frame({"op": "execute", "query": "Q1"})
            )
            await writer.drain()
            from repro.service.protocol import frame_length, split_frame

            body = await reader.readexactly(
                frame_length(await reader.readexactly(4))
            )
            writer.close()
            await server.stop()
            return split_frame(body)["rows"]

        for _ in range(2):  # second cycle exercises the restart path
            rows = asyncio.run(cycle())
            assert bag_equal(rows, direct)
        assert session.db._dedicated_readers == []

    def test_bind_failure_releases_fresh_leases(self):
        import socket

        from repro.service import QueryServer

        session = connect(figure3_database(), cache=PlanCache())
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            server = QueryServer(session, paper_registry(), pool_size=2)
            with pytest.raises(OSError):
                asyncio.run(server.start("127.0.0.1", port))
        finally:
            blocker.close()
        assert session.db._dedicated_readers == []

    def test_stop_retires_every_lease(self):
        session = connect(figure3_database(), cache=PlanCache())
        db = session.db
        handle = serve_in_background(session, paper_registry(), pool_size=3)
        try:
            with ServiceClient(handle.host, handle.port) as client:
                client.execute("Q1")
            assert len(db._dedicated_readers) == 3
        finally:
            handle.stop()
        assert db._dedicated_readers == []

    def test_oversized_response_gets_an_error_frame(self, monkeypatch):
        # A result too large for one frame must come back as a structured
        # error, not a dropped connection.
        import repro.service.protocol as protocol

        session = connect(figure3_database(), cache=PlanCache())
        with serve_in_background(session, paper_registry()) as handle:
            with ServiceClient(handle.host, handle.port) as client:
                # Big enough for request + error frames, too small for
                # Q1's ~900-byte row payload.
                monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 400)
                try:
                    with pytest.raises(ServiceError, match="limit"):
                        client.request({"op": "execute", "query": "Q1"})
                    # The connection survives for the next (small) request.
                    assert client.request({"op": "prepare", "query": "Q2"})[
                        "ok"
                    ]
                finally:
                    monkeypatch.undo()


class TestRegistry:
    def test_reregistering_replaces(self, db):
        registry = QueryRegistry()
        session = connect(db, cache=False)
        registry.register("q", session.table("departments").select("name"))
        registry.register("q", session.table("employees").select("name"))
        entry = registry.lookup("q")
        assert "employees" in repr(entry.term)

    def test_lookup_unknown_lists_known(self):
        registry = paper_registry()
        with pytest.raises(ServiceError, match="Q1"):
            registry.lookup("zzz")

    def test_invalid_name_rejected(self):
        with pytest.raises(ServiceError):
            QueryRegistry().register("", NESTED_QUERIES["Q1"])

    def test_paper_registry_contents(self):
        registry = paper_registry(extra=[("extra", NESTED_QUERIES["Q1"])])
        assert set(QUERY_NAMES) <= set(registry.names())
        assert "staff_above" in registry and "dept_staff" in registry
        assert "extra" in registry
        assert len(registry) == 9
