"""Sharing one Session across threads: the service-layer contract.

The hammer tests drive a single session (and its plan cache) from many
threads at once and then check the *exact* bookkeeping — lost updates in
``session.stats`` or the cache counters would show up as short counts.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import connect, param
from repro.data.organisation import figure3_database
from repro.data.queries import NESTED_QUERIES
from repro.pipeline.plan_cache import PlanCache
from repro.values import bag_equal

THREADS = 8
RUNS_PER_THREAD = 12
QUERY_NAMES = ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]


def _hammer(worker, thread_count: int = THREADS) -> list:
    failures: list = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except Exception as error:  # noqa: BLE001 — collect, don't die
            failures.append((index, repr(error)))

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(thread_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return failures


class TestConcurrentSession:
    def test_stats_accumulation_is_exact(self):
        session = connect(figure3_database(), cache=PlanCache())
        expected = {
            name: session.run(NESTED_QUERIES[name]).value for name in QUERY_NAMES
        }
        baseline_queries = session.stats.queries
        per_run_queries = {
            name: session.prepare(NESTED_QUERIES[name]).query_count
            for name in QUERY_NAMES
        }

        def worker(index: int) -> None:
            for i in range(RUNS_PER_THREAD):
                name = QUERY_NAMES[(index + i) % len(QUERY_NAMES)]
                result = session.prepare(NESTED_QUERIES[name]).run(
                    engine="batched"
                )
                assert bag_equal(result.value, expected[name]), name

        failures = _hammer(worker)
        assert not failures, failures

        total_runs = THREADS * RUNS_PER_THREAD
        ran_queries = sum(
            per_run_queries[QUERY_NAMES[(index + i) % len(QUERY_NAMES)]]
            for index in range(THREADS)
            for i in range(RUNS_PER_THREAD)
        )
        # No lost updates: every run's flat-query count landed exactly once.
        assert session.stats.queries - baseline_queries == ran_queries
        assert len(session.stats.per_query_millis) == session.stats.queries
        # Every prepare consulted the cache exactly once; the shapes were
        # all compiled before the hammer, so every consult was a hit.
        assert session.stats.cache_hits >= total_runs

    def test_plan_cache_counters_are_exact_under_contention(self):
        cache = PlanCache()
        session = connect(figure3_database(), cache=cache)
        term = NESTED_QUERIES["Q4"]

        def worker(index: int) -> None:
            for _ in range(RUNS_PER_THREAD):
                session.prepare(term).run(engine="batched")

        failures = _hammer(worker)
        assert not failures, failures
        total = THREADS * RUNS_PER_THREAD
        stats = cache.stats()
        # Every prepare consulted the cache; at least one miss compiled the
        # plan (two threads may race the first cold compile — both then
        # store the same plan, which is benign), and hits+misses is exact.
        assert stats["hits"] + stats["misses"] == total
        assert 1 <= stats["misses"] <= THREADS
        assert stats["entries"] == 1

    def test_parameterised_rebinding_under_contention(self):
        session = connect(figure3_database(), cache=PlanCache())
        lo = param("lo", "int")
        shape = (
            session.table("employees", alias="e")
            .where(lambda e: e.salary > lo)
            .select("name", "salary")
        )
        term = shape.term()
        thresholds = [0, 900, 20000, 50000, 60000, 100000]
        expected = {
            t: {
                row["name"]
                for row in session.db.rows("employees")
                if row["salary"] > t
            }
            for t in thresholds
        }

        def worker(index: int) -> None:
            for i in range(RUNS_PER_THREAD):
                threshold = thresholds[(index + i) % len(thresholds)]
                rows = session.prepare(term).run(params={"lo": threshold})
                names = {row["name"] for row in rows}
                assert names == expected[threshold], threshold

        failures = _hammer(worker)
        assert not failures, failures
        # One shape → at most a handful of raced cold compiles, then hits.
        assert session.stats.cache_misses <= THREADS
        assert session.stats.cache_hits >= THREADS * RUNS_PER_THREAD - THREADS


class TestConcurrentSharedScans:
    def test_overlapping_runs_share_one_materialisation(self):
        # With the optimizer on, package runs materialise content-addressed
        # qss_* tables; overlapping runs must ref-count them instead of one
        # run's cleanup dropping a table another still reads.
        from repro.api import SqlOptions

        # Projection pruning diverges sibling CTE bodies, so hold it back
        # to get a package whose statements genuinely share a scan.
        session = connect(
            figure3_database(),
            options=SqlOptions(optimize=True, opt_prune=False),
            cache=PlanCache(),
        )
        compiled = session.compile(NESTED_QUERIES["Q1"])
        assert compiled.shared_scans, "Q1 should hoist at least one scan"
        expected = session.run(NESTED_QUERIES["Q1"]).value

        def worker(index: int) -> None:
            for _ in range(RUNS_PER_THREAD):
                result = session.prepare(NESTED_QUERIES["Q1"]).run(
                    engine="batched"
                )
                assert bag_equal(result.value, expected)

        failures = _hammer(worker)
        assert not failures, failures
        # Every hold was released: no scan tables left behind.
        assert session.db._scan_refs == {}
        leftovers = session.db.execute_sql(
            "SELECT name FROM sqlite_master WHERE name LIKE 'qss_%'"
        )
        assert leftovers == []


class TestSharedScanStaleness:
    def test_insert_while_held_forces_recreation(self):
        # A scan created before an insert must not serve runs that start
        # after it: the late acquirer waits for holders to drain and
        # recreates the table from the post-insert contents.
        from repro.sql.optimizer import SharedScan
        from repro.sql.ast import Col, SelectCore, SelectItem, TableRef

        db = figure3_database()
        db.connection()
        core = SelectCore(
            (SelectItem(Col("e", "name"), "name"),),
            (TableRef("employees", "e"),),
        )
        scan = SharedScan(
            name="qss_test_stale",
            select=core,
            create_sql='CREATE TABLE "qss_test_stale" AS '
            'SELECT "e"."name" AS "name" FROM "employees" AS "e"',
            drop_sql='DROP TABLE IF EXISTS "qss_test_stale"',
        )
        db.acquire_shared_scan(scan)
        before = len(db.execute_sql('SELECT * FROM "qss_test_stale"'))
        db.insert(
            "employees",
            [{"id": 998, "name": "Yuri", "dept": "Sales", "salary": 1}],
        )

        acquired = threading.Event()

        def late_acquirer() -> None:
            db.acquire_shared_scan(scan)  # must wait for the release below
            acquired.set()

        thread = threading.Thread(target=late_acquirer)
        thread.start()
        assert not acquired.wait(timeout=0.2), "must not reuse a stale scan"
        db.release_shared_scan(scan)
        assert acquired.wait(timeout=10), "acquirer should proceed after drain"
        thread.join(timeout=10)
        after = len(db.execute_sql('SELECT * FROM "qss_test_stale"'))
        assert after == before + 1  # recreated from post-insert contents
        db.release_shared_scan(scan)
        assert db._scan_refs == {}


class TestConcurrentDatabaseSetup:
    def test_index_advisement_races_cleanly(self):
        # Fresh database: every thread triggers ensure_index/ANALYZE on
        # first run; the setup lock must serialise the DDL without
        # deadlocking or double-creating.
        session = connect(figure3_database(), cache=PlanCache())
        expected = session.run(NESTED_QUERIES["Q6"]).value
        fresh = connect(figure3_database(), cache=PlanCache())

        def worker(index: int) -> None:
            result = fresh.prepare(NESTED_QUERIES["Q6"]).run(engine="batched")
            assert bag_equal(result.value, expected)

        failures = _hammer(worker)
        assert not failures, failures


@pytest.mark.parametrize("shim", ["shred_run", "shred_sql"])
def test_deprecated_shims_warn_at_the_call_site(shim, db, schema):
    """The deprecated one-shot helpers emit DeprecationWarning pointing at
    the *caller* (stacklevel=2), so downstreams see their own file named."""
    import warnings

    from repro.data.queries import Q1
    from repro.pipeline import shredder

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        if shim == "shred_run":
            shredder.shred_run(Q1, db)
        else:
            shredder.shred_sql(Q1, schema)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert shim in str(deprecations[0].message)
    assert "repro.api" in str(deprecations[0].message)
    # stacklevel=2 → the warning is attributed to this test file, not the shim.
    assert deprecations[0].filename == __file__
