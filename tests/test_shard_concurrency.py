"""Concurrency hammer for the sharded deployment (the service contract).

Eight threads issue mixed routed / fan-out / single-shard / fallback
requests against (a) one shared in-process :class:`ShardedSession` and
(b) an in-process wire deployment (per-shard servers + one fan-out client
per thread).  The assertions are *exact* — the workload is deterministic,
so every per-shard run counter, every fallback counter and the merged
``ExecutionStats.queries`` total are computed up front and must match to
the unit; a lost update or a cross-shard race shows up as a short count.
Extends the patterns of ``tests/test_session_concurrency.py`` one layer
up the stack.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import connect
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.data.queries import NESTED_QUERIES
from repro.service import paper_registry, serve_in_background
from repro.shard import (
    ShardedDatabase,
    ShardedServiceClient,
    connect_sharded,
    shard_for,
)
from repro.values import bag_equal

THREADS = 8
RUNS_PER_THREAD = 12
SHARDS = 3
PLACEMENT = organisation_placement()

#: The mixed workload: routed point lookups, distributive fan-outs, a
#: replicated-only query and a fallback query.
WORKLOAD = (
    ("dept_staff", {"dept": "Product"}),
    ("Q4", None),
    ("dept_staff", {"dept": "Sales"}),
    ("Q2", None),
    ("Q5", None),  # fallback (nested departments reference)
    ("dept_staff", {"dept": "Research"}),
    ("Q3", None),  # single-shard (replicated-only)
)


def _workload_item(thread_index: int, run_index: int):
    return WORKLOAD[(thread_index + run_index) % len(WORKLOAD)]


def _expected_counters():
    """Simulate the deterministic workload: per-shard run counts, the
    fallback count, and per-query execute totals."""
    per_shard = [0] * SHARDS
    fallback = 0
    executes: dict[str, int] = {}
    for thread_index in range(THREADS):
        for run_index in range(RUNS_PER_THREAD):
            name, params = _workload_item(thread_index, run_index)
            executes[name] = executes.get(name, 0) + 1
            if name == "dept_staff":
                per_shard[shard_for(params["dept"], SHARDS)] += 1
            elif name in ("Q2", "Q4"):  # fanout
                for index in range(SHARDS):
                    per_shard[index] += 1
            elif name == "Q3":  # single
                per_shard[0] += 1
            else:  # Q5: fallback
                fallback += 1
    return per_shard, fallback, executes


def _hammer(worker) -> list:
    failures: list = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except Exception as error:  # noqa: BLE001 — collect, don't die
            failures.append((index, repr(error)))

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    return failures


@pytest.fixture(scope="module")
def registry():
    return paper_registry()


@pytest.fixture(scope="module")
def expected_values(registry):
    single = connect(figure3_database())
    values = {}
    for name, params in WORKLOAD:
        if (name, str(params)) in values:
            continue
        term = (
            registry.lookup(name).term
            if name == "dept_staff"
            else NESTED_QUERIES[name]
        )
        values[(name, str(params))] = single.run(term, params=params).value
    yield values
    single.close()


class TestShardedSessionHammer:
    def test_exact_counters_under_contention(self, registry, expected_values):
        session = connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=SHARDS
        )
        dept_staff = registry.lookup("dept_staff").term

        def worker(thread_index: int) -> None:
            for run_index in range(RUNS_PER_THREAD):
                name, params = _workload_item(thread_index, run_index)
                term = (
                    dept_staff if name == "dept_staff" else NESTED_QUERIES[name]
                )
                result = session.run(term, params=params)
                assert bag_equal(
                    result.value, expected_values[(name, str(params))]
                ), (name, params, result.route)

        # Pre-compile and warm every shape once, then snapshot baselines.
        worker_0_preview = [
            _workload_item(0, run_index)
            for run_index in range(len(WORKLOAD))
        ]
        for name, params in worker_0_preview:
            term = dept_staff if name == "dept_staff" else NESTED_QUERIES[name]
            session.run(term, params=params)
        base_counts = session.run_counts()
        base_stats = session.stats_snapshot()

        failures = _hammer(worker)
        assert not failures, failures

        per_shard, fallback, _executes = _expected_counters()
        counts = session.run_counts()
        deltas = [
            after - before
            for before, after in zip(base_counts["per_shard"], counts["per_shard"])
        ]
        assert deltas == per_shard
        assert counts["fallback"] - base_counts["fallback"] == fallback

        # No lost updates in the merged stats stream: every run's flat
        # statements landed exactly once.
        single = connect(figure3_database())
        query_counts = {
            "dept_staff": single.prepare(dept_staff).query_count,
            **{
                name: single.prepare(NESTED_QUERIES[name]).query_count
                for name in ("Q2", "Q3", "Q4", "Q5")
            },
        }
        expected_queries = 0
        for thread_index in range(THREADS):
            for run_index in range(RUNS_PER_THREAD):
                name, _params = _workload_item(thread_index, run_index)
                statements = query_counts[name]
                if name in ("Q2", "Q4"):
                    expected_queries += statements * SHARDS
                else:
                    expected_queries += statements
        stats = session.stats_snapshot()
        assert stats["queries"] - base_stats["queries"] == expected_queries
        mode_runs = {
            "fanouts": 0, "routed": 0, "singles": 0, "fallbacks": 0
        }
        for thread_index in range(THREADS):
            for run_index in range(RUNS_PER_THREAD):
                name, _params = _workload_item(thread_index, run_index)
                key = {
                    "dept_staff": "routed",
                    "Q2": "fanouts",
                    "Q4": "fanouts",
                    "Q3": "singles",
                    "Q5": "fallbacks",
                }[name]
                mode_runs[key] += 1
        for key, expected in mode_runs.items():
            assert stats[key] - base_stats[key] == expected, key
        # A healthy hammer must stay failover-free: any nonzero counter
        # here means a shard store failed (or was misdiagnosed as failed)
        # under plain contention.
        assert stats["failover_reroutes"] == 0
        assert stats["failover_retries"] == 0
        assert stats["down_shards"] == []
        session.close()
        single.close()


class TestShardedServiceHammer:
    def test_exact_per_shard_request_counters(self, registry, expected_values):
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, SHARDS)
        handles = [
            serve_in_background(
                connect(db), registry, pool_size=2,
                shard_label=f"{index}/{SHARDS}",
            )
            for index, db in enumerate(sdb.shards)
        ]
        fallback_handle = serve_in_background(
            connect(sdb.full), registry, pool_size=2,
            shard_label=f"full/{SHARDS}",
        )
        shard_servers = [handle.server for handle in handles]
        fallback_server = fallback_handle.server
        addresses = [(handle.host, handle.port) for handle in handles]
        fallback_address = (fallback_handle.host, fallback_handle.port)

        def make_client() -> ShardedServiceClient:
            return ShardedServiceClient(
                addresses,
                fallback_address,
                placement=PLACEMENT,
                registry=registry,
                schema=ORGANISATION_SCHEMA,
            )

        # Warm every shape on every server, then snapshot baselines.
        with make_client() as warm:
            for name, params in WORKLOAD:
                warm.prepare(name)
                warm.execute(name, params=params)
        base_executes = [
            server.request_counts.get("execute", 0)
            for server in shard_servers
        ]
        base_fallback = fallback_server.request_counts.get("execute", 0)

        try:

            def worker(thread_index: int) -> None:
                with make_client() as client:
                    for run_index in range(RUNS_PER_THREAD):
                        name, params = _workload_item(thread_index, run_index)
                        rows = client.execute(name, params=params)
                        assert bag_equal(
                            rows, expected_values[(name, str(params))]
                        ), (name, params)
                    # Healthy servers: no failovers, no tripped breakers.
                    assert client.failover_reroutes == 0
                    assert client.failover_retries == 0
                    assert client.down_shards() == frozenset()

            failures = _hammer(worker)
            assert not failures, failures

            per_shard, fallback, _executes = _expected_counters()
            deltas = [
                server.request_counts.get("execute", 0) - before
                for server, before in zip(shard_servers, base_executes)
            ]
            assert deltas == per_shard
            assert (
                fallback_server.request_counts.get("execute", 0)
                - base_fallback
                == fallback
            )
            # The shared server sessions took the whole load without a
            # single error frame.
            assert all(server.error_count == 0 for server in shard_servers)
            assert fallback_server.error_count == 0
        finally:
            for handle in [*handles, fallback_handle]:
                handle.stop()
