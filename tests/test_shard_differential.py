"""The sharding conformance suite: differential testing against a single
session.

The claim under test is semantic: for *any* query, a sharded deployment
(2/3/4 shards, in-process `ShardedSession` **and** over-the-wire
`ShardedServiceClient` against per-shard servers) produces a result that
is **equal as a nested multiset** to single-session execution — whichever
route the shardability analysis picked (fanout, routed, single-shard or
full-copy fallback).  Merging per-shard answers is a bag-union over
nested multisets, so this is exactly the paper's §2.1 equivalence.

Three layers:

* the paper queries Q1–Q6 on every engine × every shard count (both
  transports) — deterministic, exhaustive;
* the two parameterised registry queries (``staff_above(:min_salary)``,
  ``dept_staff(:dept)``), including the routed-point-lookup guarantee:
  a bound routing key hits **exactly one shard**, asserted via per-shard
  request counters on both transports;
* the headline hypothesis property: random queries from
  :mod:`tests.strategies` (host parameters and union shapes included,
  with generated bindings) are value-equal across every shard count on
  both transports, with the engine drawn per example.

CI runs the property under the fixed ``repro-ci`` hypothesis profile
(see ``tests/conftest.py``): generation stays randomised, but any
failing example prints its ``@reproduce_failure`` blob so the failure
replays locally exactly.  ``REPRO_SHARD_EXAMPLES`` scales the example
count.
"""

from __future__ import annotations

import itertools
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import connect
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.data.queries import NESTED_QUERIES
from repro.service import paper_registry, serve_in_background
from repro.shard import (
    ShardedDatabase,
    ShardedServiceClient,
    connect_sharded,
    shard_for,
)
from repro.values import assert_bag_equal, bag_equal

from .strategies import queries_with_bindings

PLACEMENT = organisation_placement()
SHARD_COUNTS = (2, 3, 4)
ENGINES = ("per-path", "batched", "parallel")
DEPTS = ("Product", "Quality", "Research", "Sales")

#: One shared catalogue: every in-process server (all shard counts, all
#: shards, all fallbacks) serves it, so the property test can register a
#: random query once and execute it across every cluster.
REGISTRY = paper_registry()

_COUNTER = itertools.count()
_SESSIONS: dict = {}
_CLUSTERS: dict = {}

_settings = settings(
    max_examples=int(os.environ.get("REPRO_SHARD_EXAMPLES", "15")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _single():
    if "single" not in _SESSIONS:
        _SESSIONS["single"] = connect(figure3_database())
    return _SESSIONS["single"]


def _session(shards: int):
    if shards not in _SESSIONS:
        _SESSIONS[shards] = connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=shards
        )
    return _SESSIONS[shards]


def _cluster(shards: int) -> ShardedServiceClient:
    """A lazily started in-process wire deployment: ``shards`` partition
    servers + one full-copy fallback server, one fan-out client."""
    if shards not in _CLUSTERS:
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, shards)
        handles = [
            serve_in_background(
                connect(db), REGISTRY, pool_size=1,
                shard_label=f"{index}/{shards}",
            )
            for index, db in enumerate(sdb.shards)
        ]
        fallback = serve_in_background(
            connect(sdb.full), REGISTRY, pool_size=1,
            shard_label=f"full/{shards}",
        )
        client = ShardedServiceClient(
            [(handle.host, handle.port) for handle in handles],
            (fallback.host, fallback.port),
            placement=PLACEMENT,
            registry=REGISTRY,
            schema=ORGANISATION_SCHEMA,
        )
        _CLUSTERS[shards] = {"handles": handles + [fallback], "client": client}
    return _CLUSTERS[shards]["client"]


@pytest.fixture(scope="module", autouse=True)
def _teardown():
    yield
    for cluster in _CLUSTERS.values():
        cluster["client"].close()
        for handle in cluster["handles"]:
            handle.stop()
    _CLUSTERS.clear()
    for key in list(_SESSIONS):
        _SESSIONS.pop(key).close()


# --------------------------------------------------------------------------
# Q1–Q6, every engine, every shard count, both transports.


class TestPaperQueries:
    @pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
    def test_in_process(self, name):
        expected = _single().run(NESTED_QUERIES[name]).value
        for shards in SHARD_COUNTS:
            session = _session(shards)
            for engine in ENGINES:
                result = session.run(NESTED_QUERIES[name], engine=engine)
                assert_bag_equal(
                    result.value,
                    expected,
                    f"{name} @ {shards} shards, {engine} ({result.route})",
                )

    @pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
    def test_over_the_wire(self, name):
        expected = _single().run(NESTED_QUERIES[name]).value
        for shards in SHARD_COUNTS:
            client = _cluster(shards)
            for engine in ENGINES:
                response = client.execute_full(name, engine=engine)
                assert_bag_equal(
                    response["rows"],
                    expected,
                    f"{name} @ {shards} shards, {engine} "
                    f"({response['route']})",
                )

    def test_set_semantics_agree(self):
        # Global set-union must dedup across shards, not only within them.
        for name in ("Q3", "Q4"):
            expected = _single().run(
                NESTED_QUERIES[name], collection="set"
            ).value
            for shards in SHARD_COUNTS:
                result = _session(shards).run(
                    NESTED_QUERIES[name], collection="set"
                )
                assert bag_equal(result.value, expected), (name, shards)
                rows = _cluster(shards).execute(name, collection="set")
                assert bag_equal(rows, expected), (name, shards, "wire")


# --------------------------------------------------------------------------
# The parameterised registry queries.


class TestParameterisedQueries:
    def test_staff_above_rebinding(self):
        term = REGISTRY.lookup("staff_above").term
        for threshold in (0, 900, 50_000, 2_000_000):
            params = {"min_salary": threshold}
            expected = _single().run(term, params=params).value
            for shards in SHARD_COUNTS:
                result = _session(shards).run(term, params=params)
                assert result.route == "single:0"  # employees replicate
                assert_bag_equal(result.value, expected, str(threshold))
                rows = _cluster(shards).execute("staff_above", params=params)
                assert_bag_equal(rows, expected, f"wire {threshold}")

    def test_dept_staff_routes_to_exactly_one_shard_in_process(self):
        term = REGISTRY.lookup("dept_staff").term
        for shards in SHARD_COUNTS:
            session = _session(shards)
            for dept in DEPTS:
                params = {"dept": dept}
                expected = _single().run(term, params=params).value
                before = session.run_counts()["per_shard"]
                result = session.run(term, params=params)
                after = session.run_counts()["per_shard"]
                owner = shard_for(dept, shards)
                assert result.route == f"routed:{owner}"
                deltas = [b - a for a, b in zip(before, after)]
                assert sum(deltas) == 1 and deltas[owner] == 1, deltas
                assert_bag_equal(result.value, expected, dept)

    def test_dept_staff_routes_to_exactly_one_shard_over_the_wire(self):
        term = REGISTRY.lookup("dept_staff").term
        for shards in SHARD_COUNTS:
            client = _cluster(shards)
            for dept in DEPTS:
                params = {"dept": dept}
                expected = _single().run(term, params=params).value
                owner = shard_for(dept, shards)
                servers_before = [
                    shard["server"]["requests"].get("execute", 0)
                    for shard in client.stats()["shards"]
                ]
                response = client.execute_full("dept_staff", params=params)
                servers_after = [
                    shard["server"]["requests"].get("execute", 0)
                    for shard in client.stats()["shards"]
                ]
                assert response["route"] == f"routed:{owner}"
                deltas = [
                    b - a for a, b in zip(servers_before, servers_after)
                ]
                assert sum(deltas) == 1 and deltas[owner] == 1, deltas
                assert_bag_equal(response["rows"], expected, dept)


# --------------------------------------------------------------------------
# The headline property: random queries, random bindings, every shard
# count, both transports.


@given(data=st.data())
@_settings
def test_random_queries_differential(data):
    query, bindings = data.draw(queries_with_bindings())
    engine = data.draw(st.sampled_from(ENGINES))
    expected = _single().run(query, params=bindings).value

    for shards in SHARD_COUNTS:
        result = _session(shards).run(query, params=bindings, engine=engine)
        assert bag_equal(result.value, expected), (
            f"in-process {shards} shards via {result.route} ({engine})"
        )

    name = f"rq_{next(_COUNTER)}"
    REGISTRY.register(name, query)
    for shards in SHARD_COUNTS:
        response = _cluster(shards).execute_full(
            name, params=bindings or None, engine=engine
        )
        assert bag_equal(response["rows"], expected), (
            f"wire {shards} shards via {response['route']} ({engine})"
        )
