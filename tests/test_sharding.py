"""Unit tests for the sharding subsystem: placement policy, shardability
analysis, partitioned databases (incl. the owning-shard-only insert
regression) and the ShardedSession surface."""

from __future__ import annotations

import pytest

from repro.api import connect, connect_sharded
from repro.data.organisation import (
    ORGANISATION_SCHEMA,
    figure3_database,
    organisation_placement,
)
from repro.data.queries import NESTED_QUERIES
from repro.errors import ShardingError
from repro.normalise import normalise
from repro.nrc import ast
from repro.nrc import builders as b
from repro.nrc.types import INT, STRING
from repro.shard import (
    Placement,
    ShardedDatabase,
    analyse,
    referenced_tables,
    replicated,
    resolve_shard,
    shard_for,
    sharded,
)
from repro.values import assert_bag_equal

PLACEMENT = organisation_placement()


def _dept_names_by_shard(shards: int) -> dict[int, list[str]]:
    owners: dict[int, list[str]] = {i: [] for i in range(shards)}
    for row in figure3_database().rows("departments"):
        owners[shard_for(row["name"], shards)].append(row["name"])
    return owners


# --------------------------------------------------------------------------
# Placement + routing hash.


class TestPlacement:
    def test_shard_for_is_deterministic_and_total(self):
        for value in (0, 1, -7, True, False, "Sales", ""):
            assert shard_for(value, 4) == shard_for(value, 4)
            assert 0 <= shard_for(value, 4) < 4
        # bool is not int for routing purposes.
        assert shard_for(True, 64) != shard_for(1, 64) or True  # may collide
        with pytest.raises(ShardingError):
            shard_for(3.14, 4)
        with pytest.raises(ShardingError):
            shard_for("x", 0)

    def test_of_filters_replicated_markers(self):
        placement = Placement.of(
            {"departments": sharded(key="name"), "employees": replicated}
        )
        assert placement.sharded_tables == ("departments",)
        assert placement.routing_column("departments") == "name"
        assert placement.routing_column("employees") is None
        assert not placement.is_sharded("employees")

    def test_of_rejects_bad_markers(self):
        with pytest.raises(ShardingError):
            Placement.of({"departments": "name"})

    def test_validate_against_schema(self):
        Placement.of({"departments": sharded(key="name")}).validate(
            ORGANISATION_SCHEMA
        )
        with pytest.raises(ShardingError):
            Placement.of({"nope": sharded(key="x")}).validate(
                ORGANISATION_SCHEMA
            )
        with pytest.raises(ShardingError):
            Placement.of({"departments": sharded(key="salary")}).validate(
                ORGANISATION_SCHEMA
            )

    def test_owner_fn_routes_and_reports_missing_key(self):
        placement = Placement.of({"departments": sharded(key="name")})
        owner = placement.owner_fn(3)
        assert owner("employees", {"anything": 1}) is None
        assert owner("departments", {"name": "Sales"}) == shard_for("Sales", 3)
        with pytest.raises(ShardingError):
            owner("departments", {"id": 1})


# --------------------------------------------------------------------------
# Shardability analysis.


def _nf(term):
    return normalise(term, ORGANISATION_SCHEMA)


class TestAnalysis:
    def test_referenced_tables_sees_probes_and_bodies(self):
        tables = referenced_tables(_nf(NESTED_QUERIES["Q2"]))
        assert {"departments", "employees", "tasks"} <= tables

    def test_replicated_only_is_single(self):
        plan = analyse(_nf(NESTED_QUERIES["Q3"]), PLACEMENT)
        assert plan.mode == "single"

    def test_distributive_fanout(self):
        for name in ("Q1", "Q2", "Q4", "Q6"):
            plan = analyse(_nf(NESTED_QUERIES[name]), PLACEMENT)
            assert plan.mode == "fanout", (name, plan)
            assert plan.table == "departments"

    def test_nested_reference_falls_back(self):
        # Q5 lists departments inside the body of a tasks comprehension.
        plan = analyse(_nf(NESTED_QUERIES["Q5"]), PLACEMENT)
        assert plan.mode == "fallback"
        assert "departments" in plan.reason

    def test_self_join_falls_back(self):
        query = b.for_(
            "d1",
            b.table("departments"),
            lambda d1: b.for_(
                "d2",
                b.table("departments"),
                lambda d2: b.where(
                    b.ne(d1["name"], d2["name"]),
                    b.ret(b.record(a=d1["name"], z=d2["name"])),
                ),
            ),
        )
        assert analyse(_nf(query), PLACEMENT).mode == "fallback"

    def test_routed_on_constant_pin(self):
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.where(
                b.eq(d["name"], b.const("Sales")),
                b.ret(b.record(n=d["name"])),
            ),
        )
        plan = analyse(_nf(query), PLACEMENT)
        assert plan.mode == "routed"
        assert plan.pin == ("const", "Sales")
        assert resolve_shard(plan, None, 4) == shard_for("Sales", 4)

    def test_routed_on_parameter_pin(self):
        dept = ast.Param("dept", STRING)
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.where(
                b.eq(dept, d["name"]), b.ret(b.record(n=d["name"]))
            ),
        )
        plan = analyse(_nf(query), PLACEMENT)
        assert plan.mode == "routed"
        assert plan.pin == ("param", "dept")
        assert resolve_shard(plan, {"dept": "Sales"}, 4) == shard_for(
            "Sales", 4
        )
        with pytest.raises(ShardingError):
            resolve_shard(plan, None, 4)

    def test_routed_through_transitive_equality(self):
        # employees sharded by dept; the inner generator is pinned only
        # through the chain e.dept = d.name ∧ d.name = :dept.
        placement = Placement.of({"employees": sharded(key="dept")})
        dept = ast.Param("dept", STRING)
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.where(
                b.eq(d["name"], dept),
                b.ret(
                    b.record(
                        department=d["name"],
                        staff=b.for_(
                            "e",
                            b.table("employees"),
                            lambda e: b.where(
                                b.eq(e["dept"], d["name"]),
                                b.ret(b.record(name=e["name"])),
                            ),
                        ),
                    )
                ),
            ),
        )
        plan = analyse(_nf(query), placement)
        assert plan.mode == "routed"
        assert plan.pin == ("param", "dept")

    def test_unpinned_disjunction_is_not_routed(self):
        # name = :dept ∨ ... does not pin the generator.
        dept = ast.Param("dept", STRING)
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.where(
                b.or_(b.eq(d["name"], dept), b.gt(d["id"], b.const(2))),
                b.ret(b.record(n=d["name"])),
            ),
        )
        plan = analyse(_nf(query), PLACEMENT)
        assert plan.mode == "fanout"  # still distributive, never routed

    def test_conflicting_pins_do_not_route(self):
        query = b.union(
            b.for_(
                "d",
                b.table("departments"),
                lambda d: b.where(
                    b.eq(d["name"], b.const("Sales")),
                    b.ret(b.record(n=d["name"])),
                ),
            ),
            b.for_(
                "d",
                b.table("departments"),
                lambda d: b.where(
                    b.eq(d["name"], b.const("Product")),
                    b.ret(b.record(n=d["name"])),
                ),
            ),
        )
        plan = analyse(_nf(query), PLACEMENT)
        assert plan.mode == "fanout"

    def test_two_sharded_tables_fall_back(self):
        placement = Placement.of(
            {
                "departments": sharded(key="name"),
                "employees": sharded(key="dept"),
            }
        )
        plan = analyse(_nf(NESTED_QUERIES["Q4"]), placement)
        assert plan.mode == "fallback"
        assert "multiple sharded tables" in plan.reason


# --------------------------------------------------------------------------
# ShardedDatabase: partitioning and insert routing.


class TestShardedDatabase:
    def test_partitions_cover_and_are_disjoint(self):
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 3)
        names = [
            {row["name"] for row in shard.rows("departments")}
            for shard in sdb.shards
        ]
        union = set().union(*names)
        assert union == {
            row["name"] for row in sdb.full.rows("departments")
        }
        total = sum(len(part) for part in names)
        assert total == len(union)  # disjoint
        # Replicated tables are full copies everywhere.
        for shard in sdb.shards:
            assert shard.row_count("employees") == sdb.full.row_count(
                "employees"
            )

    def test_insert_routes_sharded_rows(self):
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 2)
        owner = shard_for("Zeta", 2)
        sdb.insert("departments", [{"id": 99, "name": "Zeta"}])
        assert any(
            row["name"] == "Zeta" for row in sdb.shards[owner].rows("departments")
        )
        assert not any(
            row["name"] == "Zeta"
            for row in sdb.shards[1 - owner].rows("departments")
        )
        assert any(
            row["name"] == "Zeta" for row in sdb.full.rows("departments")
        )

    def test_insert_replicated_rows_everywhere(self):
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 2)
        new_row = {"id": 99, "dept": "Sales", "name": "Zoe", "salary": 1}
        sdb.insert("employees", [new_row])
        for store in [*sdb.shards, sdb.full]:
            assert any(r["name"] == "Zoe" for r in store.rows("employees"))

    def test_insert_bumps_owning_shard_version_only(self):
        """Regression: an insert routed to shard 0 must not invalidate
        shard 1's shared-scan version or its live materialisations."""
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 2)
        names = _dept_names_by_shard(2)
        assert names[0] and names[1], "fig. 3 depts should span both shards"
        new_name = next(
            f"Zz{i}" for i in range(1000) if shard_for(f"Zz{i}", 2) == 0
        )

        # A live shared-scan materialisation on shard 1.
        from repro.sql.ast import Col, SelectCore, SelectItem, TableRef
        from repro.sql.optimizer import SharedScan

        scan = SharedScan(
            name="qss_shard1_probe",
            select=SelectCore(
                (SelectItem(Col("d", "name"), "name"),),
                (TableRef("departments", "d"),),
            ),
            create_sql='CREATE TABLE "qss_shard1_probe" AS '
            'SELECT "d"."name" AS "name" FROM "departments" AS "d"',
            drop_sql='DROP TABLE IF EXISTS "qss_shard1_probe"',
        )
        shard1 = sdb.shards[1]
        shard1.acquire_shared_scan(scan)
        version_before = shard1._data_version

        sdb.insert("departments", [{"id": 99, "name": new_name}])

        assert sdb.shards[0]._data_version > 0
        assert shard1._data_version == version_before
        # The scan is still fresh: re-acquiring must not wait or recreate.
        shard1.acquire_shared_scan(scan)
        assert shard1._scan_refs[scan.name][0] == 2
        shard1.release_shared_scan(scan)
        shard1.release_shared_scan(scan)
        assert shard1._scan_refs == {}

    def test_failed_insert_touches_no_store(self):
        """A batch that fails validation must leave every store unchanged:
        the full-copy shard validates first, so partitions never hold rows
        the full copy lacks."""
        from repro.errors import BackendError

        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 2)
        bad_batch = [
            {"id": 900, "name": "Zok"},
            {"id": 901, "name": "Zal", "extra": 1},  # bad column set
        ]
        with pytest.raises(BackendError):
            sdb.insert("departments", bad_batch)
        for store in [*sdb.shards, sdb.full]:
            names = {row["name"] for row in store.rows("departments")}
            assert not names & {"Zok", "Zal"}

    def test_insert_missing_routing_column_is_rejected(self):
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 2)
        with pytest.raises(ShardingError):
            sdb.insert("departments", [{"id": 99}])

    def test_shard_count_validation(self):
        with pytest.raises(ShardingError):
            ShardedDatabase(figure3_database(), PLACEMENT, 0)


# --------------------------------------------------------------------------
# ShardedSession surface.


class TestShardedSession:
    def test_substrate_requirements_are_enforced(self):
        # An in-process session needs a placement for its store…
        with pytest.raises(ShardingError):
            connect_sharded(figure3_database())
        # …and a store to partition (bare placement now means "spawn a
        # process group"; asking for threads without data is the error).
        with pytest.raises(ShardingError):
            connect_sharded(placement=PLACEMENT, processes=False)
        # A process group regenerates its own data: an existing store
        # cannot ride along.
        with pytest.raises(ShardingError):
            connect_sharded(
                figure3_database(), placement=PLACEMENT, processes=True
            )
        # Process-group knobs are rejected on the thread substrate.
        with pytest.raises(ShardingError):
            connect_sharded(
                figure3_database(),
                placement=PLACEMENT,
                processes=False,
                scale=8,
            )

    def test_placement_conflict_is_rejected(self):
        sdb = ShardedDatabase(figure3_database(), PLACEMENT, 2)
        other = Placement.of({"employees": sharded(key="dept")})
        with pytest.raises(ShardingError):
            connect_sharded(sdb, placement=other)

    def test_routes_and_markers(self):
        with connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=2
        ) as session:
            assert session.run(NESTED_QUERIES["Q4"]).route == "fanout"
            assert session.run(NESTED_QUERIES["Q3"]).route == "single:0"
            assert session.run(NESTED_QUERIES["Q5"]).route == "fallback"
            snapshot = session.stats_snapshot()
            assert snapshot["fanouts"] == 1
            assert snapshot["singles"] == 1
            assert snapshot["fallbacks"] == 1
            assert snapshot["routed"] == 0
            counts = session.run_counts()
            assert counts["fallback"] == 1
            assert counts["per_shard"][0] == 2  # fanout + single
            assert counts["per_shard"][1] == 1  # fanout only

    def test_routed_point_lookup_hits_exactly_one_shard(self):
        from repro.service.registry import paper_registry

        term = paper_registry().lookup("dept_staff").term
        with connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=4
        ) as session:
            single = connect(figure3_database())
            for dept in ("Sales", "Product", "Research", "Quality"):
                before = session.run_counts()["per_shard"]
                result = session.run(term, params={"dept": dept})
                after = session.run_counts()["per_shard"]
                owner = shard_for(dept, 4)
                assert result.route == f"routed:{owner}"
                assert result.shards == (owner,)
                deltas = [b - a for a, b in zip(before, after)]
                assert sum(deltas) == 1 and deltas[owner] == 1
                assert_bag_equal(
                    result.value,
                    single.run(term, params={"dept": dept}).value,
                    dept,
                )
            assert session.stats_snapshot()["routed"] == 4

    def test_set_semantics_dedup_across_shards(self):
        query = b.for_(
            "d", b.table("departments"), lambda d: b.ret(b.record(k=b.const(1)))
        )
        with connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=2
        ) as session:
            bag = session.run(query)
            assert bag.route == "fanout"
            assert len(bag.value) == 4  # one per department, across shards
            as_set = session.run(query, collection="set")
            assert as_set.value == [{"k": 1}]

    def test_list_semantics_divert_to_fallback(self):
        from repro.api import SqlOptions

        with connect_sharded(
            figure3_database(),
            placement=PLACEMENT,
            shards=2,
            options=SqlOptions(ordered=True),
        ) as session:
            result = session.run(NESTED_QUERIES["Q4"], collection="list")
            assert result.route == "fallback"
            assert "row order" in result.reason
            expected = connect(
                figure3_database(), options=SqlOptions(ordered=True)
            ).run(NESTED_QUERIES["Q4"], collection="list")
            assert result.value == expected.value

    def test_insert_through_session_is_visible(self):
        with connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=2
        ) as session:
            session.insert("departments", [{"id": 99, "name": "Zeta"}])
            session.insert(
                "employees",
                [{"id": 99, "dept": "Zeta", "name": "Zoe", "salary": 5}],
            )
            result = session.run(NESTED_QUERIES["Q4"])
            zeta = [row for row in result.value if row["dept"] == "Zeta"]
            assert len(zeta) == 1
            assert zeta[0]["employees"] == ["Zoe"]

    def test_plan_cache_shared_across_shards(self):
        from repro.pipeline.plan_cache import PlanCache

        cache = PlanCache()
        with connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=3, cache=cache
        ) as session:
            session.run(NESTED_QUERIES["Q4"])
            stats = cache.stats()
            # One cold compile; every shard session reuses the plan.
            assert stats["entries"] == 1
            assert stats["misses"] == 1

    def test_explain_names_the_plan(self):
        with connect_sharded(
            figure3_database(), placement=PLACEMENT, shards=2
        ) as session:
            text = session.prepare(NESTED_QUERIES["Q4"]).explain()
            assert "shard plan" in text
            assert "fanout" in text


# --------------------------------------------------------------------------
# CLI --shard parsing.


class TestCliShardSpec:
    def test_parse(self):
        from repro.__main__ import _parse_shard

        assert _parse_shard("0/2") == (0, 2)
        assert _parse_shard("3/4") == (3, 4)
        assert _parse_shard("full/4") == ("full", 4)
        for bad in ("", "2", "4/4", "-1/4", "a/b", "full/0"):
            with pytest.raises(SystemExit):
                _parse_shard(bad)

    def test_scaled_shard_slices_are_a_partition(self):
        from repro.data.generator import scaled_database, scaled_shard

        full = scaled_database(4, seed=0, scale_rows=3)
        slices = [scaled_shard(4, i, 2, seed=0, scale_rows=3) for i in range(2)]
        dept_names = [
            {row["name"] for row in part.rows("departments")}
            for part in slices
        ]
        assert dept_names[0] | dept_names[1] == {
            row["name"] for row in full.rows("departments")
        }
        assert not (dept_names[0] & dept_names[1])
        for part in slices:
            assert part.row_count("employees") == full.row_count("employees")
        with pytest.raises(ShardingError):
            scaled_shard(4, 2, 2)
