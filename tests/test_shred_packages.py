"""Tests for shredded packages (§4.2, Theorem 3)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import ShreddingError
from repro.normalise import normalise
from repro.nrc.typecheck import infer
from repro.nrc.types import INT, STRING, BagType, bag, record_type
from repro.shred.packages import (
    PkgBag,
    annotation_at,
    annotations,
    erase,
    package_from,
    pmap,
    shred_query_package,
    shred_type_package,
)
from repro.shred.paths import EPSILON, paths
from repro.shred.shred_types import outer_shred
from repro.shred.shredded_ast import ShredQuery

RESULT = bag(
    record_type(
        department=STRING,
        people=bag(record_type(name=STRING, tasks=bag(STRING))),
    )
)


class TestPackageFrom:
    def test_annotates_each_bag_with_its_path(self):
        pkg = package_from(RESULT, lambda p: str(p))
        assert [ann for _, ann in annotations(pkg)] == [
            "ε",
            "↓.people",
            "↓.people.↓.tasks",
        ]

    def test_non_nested_type_rejected(self):
        from repro.nrc.types import FunType

        with pytest.raises(ShreddingError):
            package_from(FunType(INT, INT), lambda p: None)


class TestErase:
    def test_erase_is_left_inverse_of_shredding(self):
        """Theorem 3: erase(shred_A(A)) = A."""
        for a in [RESULT, bag(INT), bag(record_type(x=bag(INT), y=INT))]:
            assert erase(shred_type_package(a)) == a

    def test_erase_after_pmap_unchanged(self):
        pkg = shred_type_package(RESULT)
        mapped = pmap(lambda ann: ("wrapped", ann), pkg)
        assert erase(mapped) == RESULT


class TestTypePackage:
    def test_annotations_are_outer_shreddings(self):
        pkg = shred_type_package(RESULT)
        for path in paths(RESULT):
            assert annotation_at(pkg, path) == outer_shred(RESULT, path)


class TestQueryPackage:
    def test_q6_package_has_three_queries(self, schema):
        nf = normalise(queries.Q6, schema)
        a = infer(queries.Q6, schema)
        pkg = shred_query_package(nf, a)
        anns = list(annotations(pkg))
        assert len(anns) == 3
        assert all(isinstance(q, ShredQuery) for _, q in anns)

    def test_package_erases_to_result_type(self, schema):
        nf = normalise(queries.Q6, schema)
        a = infer(queries.Q6, schema)
        assert erase(shred_query_package(nf, a)) == a

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_query_count_equals_nesting_degree(self, name, schema):
        from repro.nrc.types import nesting_degree

        query = queries.NESTED_QUERIES[name]
        nf = normalise(query, schema)
        a = infer(query, schema)
        pkg = shred_query_package(nf, a)
        assert len(list(annotations(pkg))) == nesting_degree(a)


class TestAnnotationAt:
    def test_top(self):
        pkg = shred_type_package(RESULT)
        assert isinstance(pkg, PkgBag)
        assert annotation_at(pkg, EPSILON) == outer_shred(RESULT, EPSILON)

    def test_path_not_ending_at_bag(self):
        pkg = shred_type_package(RESULT)
        with pytest.raises(ShreddingError):
            annotation_at(pkg, EPSILON.down().label("department"))
