"""Property tests focused on shredding structure (§4-§6 invariants)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.data.organisation import ORGANISATION_SCHEMA, figure3_database
from repro.normalise import normalise
from repro.nrc.typecheck import infer
from repro.nrc.types import nesting_degree
from repro.shred.indexes import (
    canonical_indexes,
    check_valid,
    index_fn_for,
)
from repro.shred.packages import annotations, erase, shred_query_package
from repro.shred.paths import paths, type_at
from repro.shred.semantics import run_shredded
from repro.shred.shred_types import inner_shred, is_flat_shredded, outer_shred
from repro.shred.translate import shred_query

from .strategies import queries_with_nesting

SCHEMA = ORGANISATION_SCHEMA
DB = figure3_database()

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(queries_with_nesting())
@_settings
def test_theorem3_erasure(query):
    """erase(shred_L(A)) = A, and one annotation per bag constructor."""
    nf = normalise(query, SCHEMA)
    result_type = infer(query, SCHEMA)
    package = shred_query_package(nf, result_type)
    assert erase(package) == result_type
    assert len(list(annotations(package))) == nesting_degree(result_type)


@given(queries_with_nesting())
@_settings
def test_shredded_types_are_flat(query):
    """Theorem 2's type part: ⟦A⟧p = Bag ⟨Index, F⟩ with F flat."""
    result_type = infer(query, SCHEMA)
    for path in paths(result_type):
        shredded_type = outer_shred(result_type, path)
        assert is_flat_shredded(shredded_type.element)
        element = type_at(result_type, path).element
        assert shredded_type.element.field_type("#2") == inner_shred(element)


@given(queries_with_nesting())
@_settings
def test_blocks_grow_one_per_level(query):
    """Each ↓ in the path prepends exactly one generator block."""
    nf = normalise(query, SCHEMA)
    result_type = infer(query, SCHEMA)
    for path in paths(result_type):
        depth = 1 + sum(1 for step in path.steps if repr(step) == "↓")
        for comp in shred_query(nf, path).comps:
            assert len(comp.blocks) == depth


@given(queries_with_nesting())
@_settings
def test_all_schemes_valid(query):
    """Lemma 24 on random queries, not just the paper's."""
    nf = normalise(query, SCHEMA)
    cans = canonical_indexes(nf, DB, SCHEMA)
    for scheme in ("canonical", "natural", "flat"):
        check_valid(index_fn_for(scheme, nf, DB, SCHEMA), cans)


@given(queries_with_nesting())
@_settings
def test_child_rows_reference_existing_parents(query):
    """Referential integrity of the shredded representation: every outer
    index in a child query appears as an inner index of its parent."""
    nf = normalise(query, SCHEMA)
    result_type = infer(query, SCHEMA)
    all_paths = paths(result_type)
    rows = {p: run_shredded(shred_query(nf, p), DB) for p in all_paths}

    def inner_indexes(value):
        from repro.shred.indexes import CanonicalIndex

        if isinstance(value, CanonicalIndex):
            yield value
        elif isinstance(value, dict):
            for field in value.values():
                yield from inner_indexes(field)

    parent_inner: dict[str, set] = {}
    for path in all_paths:
        for _, value in rows[path]:
            for index in inner_indexes(value):
                parent_inner.setdefault(str(path), set()).add(index)
    for path in all_paths:
        if path.is_empty:
            continue
        from repro.baselines.looplifting.compile import parent_path

        parent = parent_path(path)
        available = parent_inner.get(str(parent), set())
        for outer, _ in rows[path]:
            assert outer in available, f"dangling outer index at {path}"
