"""Tests for the shredded semantics S⟦−⟧ (Fig. 5), pinned to the paper's
§3 result vectors r1/r2/r3 (natural indexes) and r'2/r'3 (flat indexes)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.normalise import normalise
from repro.nrc.typecheck import infer
from repro.shred.indexes import (
    FlatIndex,
    NaturalIndex,
    flat_index_fn,
    natural_index_fn,
)
from repro.shred.paths import paths
from repro.shred.semantics import (
    run_shredded,
    run_shredded_annotated,
    top_index,
)
from repro.shred.shredded_ast import TOP_TAG
from repro.shred.translate import shred_query


@pytest.fixture
def q6_shredded(schema, db):
    nf = normalise(queries.Q6, schema)
    a = infer(queries.Q6, schema)
    p1, p2, p3 = paths(a)
    return {
        "nf": nf,
        "q1": shred_query(nf, p1),
        "q2": shred_query(nf, p2),
        "q3": shred_query(nf, p3),
    }


def N(tag, *keys):
    return NaturalIndex(tag, tuple(keys))


class TestNaturalIndexResults:
    """§3: the results r1, r2, r3 with ⟨a, ids…⟩ indexes."""

    def test_r1(self, q6_shredded, db, schema):
        index = natural_index_fn(q6_shredded["nf"], db, schema)
        r1 = run_shredded(q6_shredded["q1"], db, index)
        top = N(TOP_TAG)
        assert r1 == [
            (top, {"department": "Product", "people": N("a", 1)}),
            (top, {"department": "Quality", "people": N("a", 2)}),
            (top, {"department": "Research", "people": N("a", 3)}),
            (top, {"department": "Sales", "people": N("a", 4)}),
        ]

    def test_r2(self, q6_shredded, db, schema):
        index = natural_index_fn(q6_shredded["nf"], db, schema)
        r2 = run_shredded(q6_shredded["q2"], db, index)
        assert r2 == [
            (N("a", 1), {"name": "Bert", "tasks": N("b", 1, 2)}),
            (N("a", 4), {"name": "Erik", "tasks": N("b", 4, 5)}),
            (N("a", 4), {"name": "Fred", "tasks": N("b", 4, 6)}),
            (N("a", 1), {"name": "Pat", "tasks": N("d", 1, 2)}),
            (N("a", 4), {"name": "Sue", "tasks": N("d", 4, 7)}),
        ]

    def test_r3(self, q6_shredded, db, schema):
        index = natural_index_fn(q6_shredded["nf"], db, schema)
        r3 = run_shredded(q6_shredded["q3"], db, index)
        assert r3 == [
            (N("b", 1, 2), "build"),
            (N("b", 4, 5), "call"),
            (N("b", 4, 5), "enthuse"),
            (N("b", 4, 6), "call"),
            (N("d", 1, 2), "buy"),
            (N("d", 4, 7), "buy"),
        ]


class TestFlatIndexResults:
    """§3: the surrogate-collapsed results r'2 and r'3."""

    def test_r2_flat(self, q6_shredded, db, schema):
        index = flat_index_fn(q6_shredded["nf"], db, schema)
        r2 = run_shredded(q6_shredded["q2"], db, index)
        assert r2 == [
            (FlatIndex("a", 1), {"name": "Bert", "tasks": FlatIndex("b", 1)}),
            (FlatIndex("a", 4), {"name": "Erik", "tasks": FlatIndex("b", 2)}),
            (FlatIndex("a", 4), {"name": "Fred", "tasks": FlatIndex("b", 3)}),
            (FlatIndex("a", 1), {"name": "Pat", "tasks": FlatIndex("d", 1)}),
            (FlatIndex("a", 4), {"name": "Sue", "tasks": FlatIndex("d", 2)}),
        ]

    def test_r3_flat(self, q6_shredded, db, schema):
        index = flat_index_fn(q6_shredded["nf"], db, schema)
        r3 = run_shredded(q6_shredded["q3"], db, index)
        assert r3 == [
            (FlatIndex("b", 1), "build"),
            (FlatIndex("b", 2), "call"),
            (FlatIndex("b", 2), "enthuse"),
            (FlatIndex("b", 3), "call"),
            (FlatIndex("d", 1), "buy"),
            (FlatIndex("d", 2), "buy"),
        ]


class TestCanonicalSemantics:
    def test_top_index(self):
        from repro.shred.indexes import CanonicalIndex

        assert top_index() == CanonicalIndex(TOP_TAG, (1,))

    def test_outer_strips_last_component(self, q6_shredded, db):
        r2 = run_shredded(q6_shredded["q2"], db)
        for outer, value in r2:
            inner = value["tasks"]
            # The inner index extends this row's context by one position.
            assert len(inner.dyn) == len(outer.dyn) + 1

    def test_annotated_semantics_tags_own_index(self, q6_shredded, db):
        rows = run_shredded_annotated(q6_shredded["q2"], db)
        for outer, value, own in rows:
            assert own.tag in ("b", "d")
            assert own.dyn[:-1] == outer.dyn

    def test_annotations_unique(self, q6_shredded, db):
        for q in ("q1", "q2", "q3"):
            rows = run_shredded_annotated(q6_shredded[q], db)
            anns = [own for _, _, own in rows]
            assert len(set(anns)) == len(anns)

    def test_empty_database(self, q6_shredded, empty_db):
        for q in ("q1", "q2", "q3"):
            assert run_shredded(q6_shredded[q], empty_db) == []


class TestGeneratorlessBlock:
    def test_buy_branch_fires_once_per_contact(self, q6_shredded, db):
        r3 = run_shredded(q6_shredded["q3"], db)
        buys = [v for _, v in r3 if v == "buy"]
        assert len(buys) == 2  # Pat and Sue


class TestEmptyConditionInShreddedQuery:
    def test_qf5_shredded_and_run(self, schema, db):
        nf = normalise(queries.QF5, schema)
        shredded = shred_query(nf, paths(infer(queries.QF5, schema))[0])
        rows = run_shredded(shredded, db)
        assert [v["emp"] for _, v in rows] == ["Cora"]
