"""Tests for the shredding translation on terms ⟦L⟧p (Fig. 4)."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import ShreddingError
from repro.normalise import normalise
from repro.normalise.normal_form import EmptyNF, PrimNF
from repro.nrc.typecheck import infer
from repro.shred.paths import EPSILON, paths
from repro.shred.shredded_ast import (
    IN,
    OUT,
    TOP_TAG,
    IndexRef,
    ShredQuery,
    SRecord,
)
from repro.shred.translate import shred_query


@pytest.fixture
def q6_parts(schema):
    nf = normalise(queries.Q6, schema)
    a = infer(queries.Q6, schema)
    p1, p2, p3 = paths(a)
    return nf, (p1, p2, p3)


class TestRunningExample:
    """§4.1: shredding Qcomp at its three paths gives q1, q2, q3."""

    def test_q1_shape(self, q6_parts):
        nf, (p1, _, _) = q6_parts
        q1 = shred_query(nf, p1)
        assert len(q1.comps) == 1
        comp = q1.comps[0]
        assert comp.tag == "a"
        assert comp.outer == IndexRef(TOP_TAG, OUT)
        assert len(comp.blocks) == 1
        assert [g.table for g in comp.blocks[0].generators] == ["departments"]
        assert isinstance(comp.inner, SRecord)
        assert comp.inner.field("people") == IndexRef("a", IN)

    def test_q2_shape(self, q6_parts):
        nf, (_, p2, _) = q6_parts
        q2 = shred_query(nf, p2)
        assert len(q2.comps) == 2
        employees_branch, contacts_branch = q2.comps
        assert employees_branch.tag == "b"
        assert contacts_branch.tag == "d"
        # Both branches splice into the same parent: outer index a·out.
        assert employees_branch.outer == IndexRef("a", OUT)
        assert contacts_branch.outer == IndexRef("a", OUT)
        # The department block is prepended to each.
        assert [g.table for g in employees_branch.all_generators] == [
            "departments",
            "employees",
        ]
        assert [g.table for g in contacts_branch.all_generators] == [
            "departments",
            "contacts",
        ]
        assert employees_branch.inner.field("tasks") == IndexRef("b", IN)
        assert contacts_branch.inner.field("tasks") == IndexRef("d", IN)

    def test_q3_shape(self, q6_parts):
        nf, (_, _, p3) = q6_parts
        q3 = shred_query(nf, p3)
        assert len(q3.comps) == 2
        task_branch, buy_branch = q3.comps
        assert task_branch.tag == "c"
        assert task_branch.outer == IndexRef("b", OUT)
        assert [g.table for g in task_branch.all_generators] == [
            "departments",
            "employees",
            "tasks",
        ]
        assert buy_branch.tag == "e"
        assert buy_branch.outer == IndexRef("d", OUT)
        # The "buy" branch has a generator-less final block.
        assert buy_branch.blocks[-1].generators == ()
        from repro.normalise.normal_form import ConstNF

        assert buy_branch.inner == ConstNF("buy")

    def test_blocks_one_per_level(self, q6_parts):
        nf, (p1, p2, p3) = q6_parts
        assert all(len(c.blocks) == 1 for c in shred_query(nf, p1).comps)
        assert all(len(c.blocks) == 2 for c in shred_query(nf, p2).comps)
        assert all(len(c.blocks) == 3 for c in shred_query(nf, p3).comps)


class TestEmptinessShredding:
    def test_empty_in_body_wraps_shredded_query(self, schema):
        nf = normalise(queries.QF5, schema)
        shredded = shred_query(nf, EPSILON)
        condition = shredded.comps[0].blocks[0].where
        # Conditions keep their NormQuery empties (only bodies re-shred).
        from repro.normalise.normal_form import NormQuery

        empties = _collect_empties(condition)
        assert empties and all(
            isinstance(e.query, NormQuery) for e in empties
        )

    def test_empty_in_body_is_shredded(self, schema):
        from repro.nrc import builders as b

        # Body contains empty(...) as a returned field value.
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    name=d["name"],
                    lonely=b.is_empty(
                        b.for_(
                            "e",
                            b.table("employees"),
                            lambda e: b.where(
                                b.eq(e["dept"], d["name"]), b.ret(b.record())
                            ),
                        )
                    ),
                )
            ),
        )
        nf = normalise(query, schema)
        shredded = shred_query(nf, EPSILON)
        inner = shredded.comps[0].inner
        lonely = inner.field("lonely")
        assert isinstance(lonely, EmptyNF)
        assert isinstance(lonely.query, ShredQuery)


class TestErrors:
    def test_untagged_normal_form_rejected(self, schema):
        nf = normalise(queries.Q4, schema, with_tags=False)
        with pytest.raises(ShreddingError):
            shred_query(nf, EPSILON)

    def test_bad_path_rejected(self, schema):
        nf = normalise(queries.Q4, schema)
        with pytest.raises(ShreddingError):
            shred_query(nf, EPSILON.label("nonsense"))

    def test_path_into_base_field_rejected(self, schema):
        nf = normalise(queries.Q4, schema)
        with pytest.raises(ShreddingError):
            shred_query(nf, EPSILON.down().label("dept").down())


class TestLinearity:
    def test_translation_linear_size(self, schema):
        """§4.1: the shredding translation is linear in time and space —
        total blocks across all shredded queries stay proportional to the
        normal form size."""
        nf = normalise(queries.Q6, schema)
        a = infer(queries.Q6, schema)
        total_blocks = sum(
            len(comp.blocks)
            for path in paths(a)
            for comp in shred_query(nf, path).comps
        )
        assert total_blocks == 1 + 2 + 2 + 3 + 3  # 1+2+2+3+3 = 11 ≤ O(|NF|)


def _collect_empties(expr):
    found = []
    if isinstance(expr, EmptyNF):
        found.append(expr)
    elif isinstance(expr, PrimNF):
        for arg in expr.args:
            found.extend(_collect_empties(arg))
    return found
