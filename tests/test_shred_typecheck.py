"""Theorems 2 and 5, executable: shredded and let-inserted terms are
well-typed at their shredded types."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.data import queries
from repro.data.organisation import ORGANISATION_SCHEMA
from repro.errors import TypeCheckError
from repro.letins.translate import let_insert
from repro.letins.typecheck import check_let_query
from repro.normalise import normalise
from repro.nrc.typecheck import infer
from repro.nrc.types import BagType
from repro.shred.paths import paths, type_at
from repro.shred.shred_types import shredded_row_type
from repro.shred.translate import shred_query
from repro.shred.typecheck import check_shredded_query

from .strategies import queries_with_nesting

ALL = {**queries.FLAT_QUERIES, **queries.NESTED_QUERIES}
SCHEMA = ORGANISATION_SCHEMA


class TestTheorem2:
    """⊢ L : A and p ∈ paths(A) implies ⊢ ⟦L⟧p : ⟦A⟧p."""

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_paper_queries_welltyped(self, name, schema):
        query = ALL[name]
        nf = normalise(query, schema)
        result_type = infer(query, schema)
        for path in paths(result_type):
            bag = type_at(result_type, path)
            assert isinstance(bag, BagType)
            check_shredded_query(
                shred_query(nf, path), shredded_row_type(bag.element), schema
            )

    def test_rejects_wrong_item_type(self, schema):
        from repro.nrc.types import INT, bag

        nf = normalise(queries.Q4, schema)
        shredded = shred_query(nf, paths(infer(queries.Q4, schema))[0])
        with pytest.raises(TypeCheckError):
            check_shredded_query(shredded, shredded_row_type(INT), schema)
        with pytest.raises(TypeCheckError):
            check_shredded_query(shredded, bag(INT), schema)

    def test_rejects_duplicate_binders(self, schema):
        from repro.normalise.normal_form import Generator, TRUE_NF, ConstNF
        from repro.nrc.types import STRING
        from repro.shred.shredded_ast import (
            Block,
            IndexRef,
            OUT,
            ShredComp,
            ShredQuery,
            TOP_TAG,
        )

        duplicated = ShredQuery(
            (
                ShredComp(
                    blocks=(
                        Block(
                            (
                                Generator("x", "departments"),
                                Generator("x", "departments"),
                            ),
                            TRUE_NF,
                        ),
                    ),
                    tag="a",
                    outer=IndexRef(TOP_TAG, OUT),
                    inner=ConstNF("v"),
                ),
            )
        )
        with pytest.raises(TypeCheckError):
            check_shredded_query(
                duplicated, shredded_row_type(STRING), schema
            )


class TestTheorem5:
    """⊢ M : Bag ⟨Index, F⟩ implies ⊢ L(M) : L(Bag ⟨Index, F⟩)."""

    @pytest.mark.parametrize("name", sorted(ALL))
    def test_paper_queries_welltyped(self, name, schema):
        query = ALL[name]
        nf = normalise(query, schema)
        result_type = infer(query, schema)
        for path in paths(result_type):
            bag = type_at(result_type, path)
            assert isinstance(bag, BagType)
            check_let_query(
                let_insert(shred_query(nf, path)),
                shredded_row_type(bag.element),
                schema,
            )

    def test_z_projection_bounds_checked(self, schema):
        from repro.letins.ast import LetComp, LetIndex, ZProj
        from repro.letins.translate import let_insert as _  # noqa: F401
        from repro.normalise.normal_form import TRUE_NF
        from repro.letins.ast import LetQuery
        from repro.nrc.types import STRING
        from repro.shred.shredded_ast import TOP_TAG

        bogus = LetQuery(
            (
                LetComp(
                    outer=None,
                    generators=(),
                    where=TRUE_NF,
                    tag="a",
                    body_outer=LetIndex(TOP_TAG, 1),
                    body_value=ZProj(3, "name"),  # no outer query at all
                ),
            )
        )
        with pytest.raises(TypeCheckError):
            check_let_query(bogus, shredded_row_type(STRING), schema)


_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(queries_with_nesting())
@_settings
def test_theorems_2_and_5_on_random_queries(query):
    nf = normalise(query, SCHEMA)
    result_type = infer(query, SCHEMA)
    for path in paths(result_type):
        bag = type_at(result_type, path)
        expected = shredded_row_type(bag.element)
        shredded = shred_query(nf, path)
        check_shredded_query(shredded, expected, SCHEMA)
        check_let_query(let_insert(shredded), expected, SCHEMA)
