"""Tests for shredded types ⟨A⟩ / ⟦A⟧p (§4.1, Theorem 2 type parts)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidPathError
from repro.nrc.types import INT, STRING, BagType, bag, record_type, tuple_type
from repro.shred.paths import EPSILON, paths
from repro.shred.shred_types import (
    INDEX,
    inner_shred,
    is_flat_shredded,
    outer_shred,
)

RESULT = bag(
    record_type(
        department=STRING,
        people=bag(record_type(name=STRING, tasks=bag(STRING))),
    )
)


class TestInnerShred:
    def test_base(self):
        assert inner_shred(INT) == INT

    def test_bag_becomes_index(self):
        assert inner_shred(bag(INT)) == INDEX

    def test_record_recurses(self):
        a = record_type(name=STRING, tasks=bag(STRING))
        assert inner_shred(a) == record_type(name=STRING, tasks=INDEX)


class TestOuterShred:
    def test_paper_a1_a2_a3(self):
        """§4.1: the three shredded types of Result."""
        p1, p2, p3 = paths(RESULT)
        a1 = outer_shred(RESULT, p1)
        a2 = outer_shred(RESULT, p2)
        a3 = outer_shred(RESULT, p3)
        assert a1 == BagType(
            tuple_type(
                INDEX, record_type(department=STRING, people=INDEX)
            )
        )
        assert a2 == BagType(
            tuple_type(INDEX, record_type(name=STRING, tasks=INDEX))
        )
        assert a3 == BagType(tuple_type(INDEX, STRING))

    def test_all_shredded_types_flat(self):
        for p in paths(RESULT):
            shredded = outer_shred(RESULT, p)
            assert isinstance(shredded, BagType)
            assert is_flat_shredded(shredded.element)

    def test_epsilon_requires_bag(self):
        with pytest.raises(InvalidPathError):
            outer_shred(INT, EPSILON)

    def test_bad_label(self):
        with pytest.raises(InvalidPathError):
            outer_shred(RESULT, EPSILON.down().label("nope"))


class TestIsFlatShredded:
    def test_flat(self):
        assert is_flat_shredded(record_type(a=INT, i=INDEX))

    def test_not_flat(self):
        assert not is_flat_shredded(bag(INT))
        assert not is_flat_shredded(record_type(a=bag(INT)))
