"""Integration on a non-organisation schema: the social-feed example
(4-level nesting), end to end across systems."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))

from social_feed import SOCIAL_SCHEMA, feed_query, sample_database  # noqa: E402

from repro.api import connect
from repro.baselines.looplifting import LoopLiftingPipeline
from repro.baselines.naive import AvalanchePipeline
from repro.nrc.semantics import evaluate
from repro.nrc.types import nesting_degree
from repro.nrc.typecheck import infer
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal


@pytest.fixture(scope="module")
def social_db():
    return sample_database()


@pytest.fixture(scope="module")
def query():
    # The example builds the feed with the fluent façade; lowering it to a
    # λNRC term lets every baseline system below consume the same query.
    return feed_query(connect(schema=SOCIAL_SCHEMA)).term()


class TestFeed:
    def test_nesting_degree_four(self, query):
        assert nesting_degree(infer(query, SOCIAL_SCHEMA)) == 4

    def test_expected_content(self, social_db, query):
        result = evaluate(query, social_db)
        edinburgh = next(r for r in result if r["city"] == "Edinburgh")
        ada = next(p for p in edinburgh["people"] if p["user"] == "ada")
        shredding_post = next(
            p for p in ada["posts"] if p["title"] == "On shredding"
        )
        assert sorted(shredding_post["comments"]) == ["+1", "nice"]
        brendan = next(p for p in edinburgh["people"] if p["user"] == "brendan")
        assert brendan["posts"] == []

    def test_shredding_four_queries(self, social_db, query):
        compiled = ShreddingPipeline(SOCIAL_SCHEMA, validate=True).compile(query)
        assert compiled.query_count == 4
        assert bag_equal(compiled.run(social_db), evaluate(query, social_db))

    @pytest.mark.parametrize(
        "options",
        [SqlOptions(), SqlOptions(scheme="natural"), SqlOptions(dedup_cte=True)],
        ids=["flat", "natural", "dedup-cte"],
    )
    def test_sql_variants(self, social_db, query, options):
        out = ShreddingPipeline(SOCIAL_SCHEMA, options).run(query, social_db)
        assert bag_equal(out, evaluate(query, social_db))

    def test_loop_lifting(self, social_db, query):
        out = LoopLiftingPipeline(SOCIAL_SCHEMA).run(query, social_db)
        assert bag_equal(out, evaluate(query, social_db))

    def test_avalanche(self, social_db, query):
        out = AvalanchePipeline(SOCIAL_SCHEMA).run(query, social_db)
        assert bag_equal(out, evaluate(query, social_db))

    def test_list_semantics(self, social_db, query):
        pipeline = ShreddingPipeline(SOCIAL_SCHEMA, SqlOptions(ordered=True))
        out = pipeline.compile(query).run(social_db, collection="list")
        assert out == evaluate(query, social_db)

    def test_integer_join_keys(self, social_db, query):
        """comments join posts on an *integer* column (post_id = p.id) —
        exercises non-string equality through every translation stage."""
        result = ShreddingPipeline(SOCIAL_SCHEMA).run(query, social_db)
        totals = sum(
            len(post["comments"])
            for city in result
            for person in city["people"]
            for post in person["posts"]
        )
        assert totals == 3
