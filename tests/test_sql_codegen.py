"""Tests for SQL generation (§7) and rendering."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import SqlGenerationError
from repro.normalise import normalise
from repro.nrc.typecheck import infer
from repro.nrc.types import BagType
from repro.shred.paths import paths, type_at
from repro.shred.translate import shred_query
from repro.sql.ast import (
    BinOp,
    Col,
    Lit,
    NotExists,
    NotOp,
    RowNumber,
    SelectCore,
    SelectItem,
    Statement,
    TableRef,
)
from repro.sql.codegen import SqlOptions, compile_shredded
from repro.sql.render import render_expr, render_select, render_statement


def _compile_all(query, schema, options=SqlOptions()):
    nf = normalise(query, schema)
    a = infer(query, schema)
    out = []
    for path in paths(a):
        bag = type_at(a, path)
        assert isinstance(bag, BagType)
        out.append(
            compile_shredded(shred_query(nf, path), bag.element, schema, options)
        )
    return out


class TestRender:
    def test_literals(self):
        assert render_expr(Lit(1)) == "1"
        assert render_expr(Lit("o'brien")) == "'o''brien'"
        assert render_expr(Lit(True)) == "1"
        assert render_expr(Lit(None)) == "NULL"

    def test_col_and_binop(self):
        e = BinOp("=", Col("x", "name"), Lit("a"))
        assert render_expr(e) == "(\"x\".\"name\" = 'a')"

    def test_not(self):
        assert render_expr(NotOp(Lit(True))) == "(NOT 1)"

    def test_row_number(self):
        e = RowNumber((Col("x", "id"),))
        assert render_expr(e) == 'ROW_NUMBER() OVER (ORDER BY "x"."id")'
        assert render_expr(RowNumber(())) == "ROW_NUMBER() OVER ()"

    def test_not_exists(self):
        core = SelectCore((), (TableRef("t", "x"),), Lit(True))
        assert render_expr(NotExists(core)) == (
            '(NOT EXISTS (SELECT 1 FROM "t" AS "x" WHERE 1))'
        )

    def test_select_without_from(self):
        core = SelectCore((SelectItem(Lit(1), "one"),), (), None)
        assert render_select(core) == 'SELECT 1 AS "one"'

    def test_statement_with_cte_and_union(self):
        core = SelectCore((SelectItem(Lit(1), "c"),), (), None)
        statement = Statement((("q1", core),), (core, core), ("c",))
        text = render_statement(statement, pretty=False)
        assert text.startswith('WITH "q1" AS (')
        assert "UNION ALL" in text

    def test_empty_statement_rejected(self):
        with pytest.raises(SqlGenerationError):
            render_statement(Statement((), (), ()))


class TestFlatCodegen:
    def test_q6_produces_three_statements(self, schema):
        compiled = _compile_all(queries.Q6, schema)
        assert len(compiled) == 3

    def test_leaf_query_has_no_rownumber_item(self, schema):
        compiled = _compile_all(queries.Q6, schema)
        # The innermost query (tasks) has no nested bags below it, so no
        # ROW_NUMBER appears in its SELECT items (only in its CTEs).
        innermost = compiled[2]
        for select in innermost.statement.selects:
            for item in select.items:
                assert not isinstance(item.expr, RowNumber)

    def test_non_leaf_query_numbers_rows(self, schema):
        compiled = _compile_all(queries.Q6, schema)
        top = compiled[0]
        kinds = [
            type(item.expr)
            for select in top.statement.selects
            for item in select.items
        ]
        assert RowNumber in kinds

    def test_union_branches_share_columns(self, schema):
        compiled = _compile_all(queries.Q6, schema)
        for c in compiled:
            alias_lists = [
                tuple(item.alias for item in select.items)
                for select in c.statement.selects
            ]
            assert len(set(alias_lists)) == 1

    def test_inline_with_removes_ctes(self, schema):
        inline = SqlOptions(inline_with=True)
        compiled = _compile_all(queries.Q6, schema, inline)
        for c in compiled:
            assert c.statement.ctes == ()
        # Still executable and equivalent (checked in pipeline tests).

    def test_order_by_keys_reduces_order_columns(self, schema):
        default = _compile_all(queries.Q6, schema)[2]
        keyed = _compile_all(
            queries.Q6, schema, SqlOptions(order_by_keys=True)
        )[2]
        assert len(keyed.sql) < len(default.sql)
        assert "ORDER BY" in keyed.sql

    def test_empty_probe_renders_not_exists(self, schema):
        compiled = _compile_all(queries.QF5, schema)[0]
        assert "NOT EXISTS" in compiled.sql

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SqlGenerationError):
            SqlOptions(scheme="bogus")


class TestNaturalCodegen:
    def test_no_row_number_anywhere(self, schema):
        compiled = _compile_all(
            queries.Q6, schema, SqlOptions(scheme="natural")
        )
        for c in compiled:
            assert "ROW_NUMBER" not in c.sql
            assert c.statement.ctes == ()

    def test_null_padding_for_uneven_branches(self, schema, db):
        # §6.1: "the need to pad some subqueries with null columns" — build
        # a union whose branches bind 3 vs 2 generators at the same level.
        from repro.nrc import builders as b

        asymmetric = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    n=d["name"],
                    people=b.union(
                        b.for_(
                            "e",
                            b.table("employees"),
                            lambda e: b.for_(
                                "t",
                                b.table("tasks"),
                                lambda t: b.where(
                                    b.and_(
                                        b.eq(e["dept"], d["name"]),
                                        b.eq(t["employee"], e["name"]),
                                    ),
                                    b.ret(
                                        b.record(
                                            who=e["name"],
                                            stuff=b.for_(
                                                "u",
                                                b.table("tasks"),
                                                lambda u: b.where(
                                                    b.eq(
                                                        u["employee"],
                                                        e["name"],
                                                    ),
                                                    b.ret(u["task"]),
                                                ),
                                            ),
                                        )
                                    ),
                                ),
                            ),
                        ),
                        b.for_(
                            "c",
                            b.table("contacts"),
                            lambda c: b.where(
                                b.eq(c["dept"], d["name"]),
                                b.ret(
                                    b.record(
                                        who=c["name"],
                                        stuff=b.ret(b.const("z")),
                                    )
                                ),
                            ),
                        ),
                    ),
                )
            ),
        )
        compiled = _compile_all(asymmetric, schema, SqlOptions(scheme="natural"))
        middle = compiled[1]  # the `people` query: 3 vs 2 generators
        assert "NULL" in middle.sql
        # And the padded query still round-trips end to end.
        from repro.nrc.semantics import evaluate
        from repro.pipeline.shredder import shred_run
        from repro.values import bag_equal

        out = shred_run(asymmetric, db, SqlOptions(scheme="natural"))
        assert bag_equal(out, evaluate(asymmetric, db))

    def test_key_columns_in_select(self, schema):
        compiled = _compile_all(
            queries.Q6, schema, SqlOptions(scheme="natural")
        )[1]
        assert '"id"' in compiled.sql


class TestDecodeRows:
    def test_decode_round_trip(self, schema, db):
        compiled = _compile_all(queries.Q6, schema)[1]
        pairs = compiled.decode_rows(db.execute_sql(compiled.sql))
        from repro.shred.indexes import FlatIndex

        assert all(isinstance(outer, FlatIndex) for outer, _ in pairs)
        names = sorted(value["name"] for _, value in pairs)
        assert names == ["Bert", "Erik", "Fred", "Pat", "Sue"]

    def test_decode_natural(self, schema, db):
        compiled = _compile_all(
            queries.Q6, schema, SqlOptions(scheme="natural")
        )[1]
        pairs = compiled.decode_rows(db.execute_sql(compiled.sql))
        from repro.shred.indexes import NaturalIndex

        assert all(isinstance(outer, NaturalIndex) for outer, _ in pairs)
        # §3: Bert's tasks index carries the two ids ⟨1, 2⟩.
        bert = next(v for _, v in pairs if v["name"] == "Bert")
        assert bert["tasks"] == NaturalIndex("b", (1, 2))
