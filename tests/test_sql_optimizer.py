"""The logical SQL optimizer: per-rule units + end-to-end soundness.

The unit tests drive each rewrite rule on hand-built ASTs; the soundness
half asserts the only property that matters — optimised and unoptimised
pipelines return identical nested values — on the paper queries and on
hypothesis-generated λNRC queries, for every execution engine.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.data.queries import FLAT_QUERIES, NESTED_QUERIES
from repro.pipeline.flat import compile_flat_query
from repro.pipeline.plan_cache import PlanCache, plan_key
from repro.pipeline.shredder import ShreddingPipeline
from repro.sql.ast import (
    BinOp,
    Col,
    CteRef,
    Lit,
    NotExists,
    NotOp,
    RowNumber,
    SelectCore,
    SelectItem,
    Statement,
    SubqueryRef,
    TableRef,
)
from repro.sql.codegen import SqlOptions
from repro.sql.optimizer import (
    extract_shared_scans,
    fold_expr,
    optimize_statement,
)
from repro.values import bag_equal

from .strategies import queries_with_nesting

OPT = SqlOptions(optimize=True)
ENGINES = ["per-path", "batched", "parallel"]


def _statement(selects, ctes=()):
    return Statement(tuple(ctes), tuple(selects), ("a",))


# --------------------------------------------------------------------------
# Constant folding.


def test_fold_double_negation():
    x = Col("t", "a")
    assert fold_expr(NotOp(NotOp(x))) == x
    assert fold_expr(NotOp(NotOp(NotOp(x)))) == NotOp(x)


def test_fold_boolean_identities():
    x = Col("t", "a")
    assert fold_expr(BinOp("AND", Lit(True), x)) == x
    assert fold_expr(BinOp("AND", x, Lit(False))) == Lit(False)
    assert fold_expr(BinOp("OR", Lit(False), x)) == x
    assert fold_expr(BinOp("OR", x, Lit(True))) == Lit(True)


def test_fold_literal_arithmetic_and_comparisons():
    assert fold_expr(BinOp("+", Lit(2), Lit(3))) == Lit(5)
    assert fold_expr(BinOp("*", Lit(4), Lit(-2))) == Lit(-8)
    assert fold_expr(BinOp("<", Lit(1), Lit(2))) == Lit(True)
    assert fold_expr(BinOp("=", Lit("a"), Lit("b"))) == Lit(False)
    assert fold_expr(BinOp("||", Lit("a"), Lit("b"))) == Lit("ab")


def test_fold_never_touches_nulls_or_mixed_types():
    # NULL propagation and SQLite's cross-type ordering stay SQLite's job.
    e1 = BinOp("=", Lit(None), Lit(1))
    assert fold_expr(e1) == e1
    e2 = BinOp("<", Lit(1), Lit("a"))
    assert fold_expr(e2) == e2
    # Division differs between Python (floor) and SQLite (truncate).
    e3 = BinOp("/", Lit(-7), Lit(2))
    assert fold_expr(e3) == e3


def test_fold_not_exists_probes():
    dead = NotExists(SelectCore((), (TableRef("t", "x"),), Lit(False)))
    assert fold_expr(dead) == Lit(True)
    trivial = NotExists(SelectCore((), (), None))
    assert fold_expr(trivial) == Lit(False)


def test_dead_branch_elimination_keeps_one_branch():
    live = SelectCore((SelectItem(Col("t", "a"), "a"),), (TableRef("t", "t"),))
    dead = SelectCore(
        (SelectItem(Lit(None), "a"),), (), BinOp("AND", Lit(False), Lit(True))
    )
    optimized = optimize_statement(_statement([live, dead]), OPT)
    assert optimized.selects == (live,)
    # A statement that is nothing but dead branches keeps exactly one.
    only_dead = optimize_statement(_statement([dead, dead]), OPT)
    assert len(only_dead.selects) == 1


def test_where_true_is_dropped():
    core = SelectCore(
        (SelectItem(Col("t", "a"), "a"),),
        (TableRef("t", "t"),),
        NotOp(Lit(False)),
    )
    optimized = optimize_statement(_statement([core]), OPT)
    assert optimized.selects[0].where is None


# --------------------------------------------------------------------------
# Trivial-subquery flattening.


def test_trivial_subquery_collapses_to_table_ref():
    inner = SelectCore(
        (SelectItem(Col("e", "name"), "name"), SelectItem(Col("e", "dept"), "dept")),
        (TableRef("employees", "e"),),
    )
    outer = SelectCore(
        (SelectItem(Col("s", "name"), "a"),),
        (SubqueryRef(inner, "s"),),
    )
    optimized = optimize_statement(_statement([outer]), OPT)
    assert optimized.selects[0].from_items == (TableRef("employees", "s"),)


@pytest.mark.parametrize(
    "inner",
    [
        # A WHERE clause: not trivial.
        SelectCore(
            (SelectItem(Col("e", "name"), "name"),),
            (TableRef("employees", "e"),),
            BinOp("=", Col("e", "dept"), Lit("Sales")),
        ),
        # A renaming projection: not trivial.
        SelectCore(
            (SelectItem(Col("e", "name"), "n"),),
            (TableRef("employees", "e"),),
        ),
        # A computed item: not trivial.
        SelectCore(
            (SelectItem(RowNumber((Col("e", "id"),)), "idx"),),
            (TableRef("employees", "e"),),
        ),
    ],
)
def test_non_trivial_subqueries_survive(inner):
    outer = SelectCore(
        (SelectItem(Lit(1), "a"),), (SubqueryRef(inner, "s"),)
    )
    optimized = optimize_statement(_statement([outer]), OPT)
    assert isinstance(optimized.selects[0].from_items[0], SubqueryRef)


# --------------------------------------------------------------------------
# CTE deduplication, pruning, pushdown.


def _dept_cte(extra_item=None):
    items = [
        SelectItem(Col("x", "id"), "c1_id"),
        SelectItem(Col("x", "name"), "c1_name"),
    ]
    if extra_item is not None:
        items.append(extra_item)
    return SelectCore(tuple(items), (TableRef("departments", "x"),))


def test_identical_ctes_merge_within_a_statement():
    consumer = SelectCore(
        (SelectItem(Col("z1", "c1_name"), "a"),),
        (CteRef("q1", "z1"),),
    )
    consumer2 = SelectCore(
        (SelectItem(Col("z2", "c1_name"), "a"),),
        (CteRef("q2", "z2"),),
    )
    optimized = optimize_statement(
        _statement([consumer, consumer2], [("q1", _dept_cte()), ("q2", _dept_cte())]),
        OPT,
    )
    assert [name for name, _ in optimized.ctes] == ["q1"]
    assert optimized.selects[1].from_items == (CteRef("q1", "z2"),)


def test_unused_cte_columns_are_pruned_and_unreferenced_ctes_dropped():
    consumer = SelectCore(
        (SelectItem(Col("z1", "c1_name"), "a"),),
        (CteRef("q1", "z1"),),
    )
    optimized = optimize_statement(
        _statement([consumer], [("q1", _dept_cte()), ("q2", _dept_cte())]), OPT
    )
    assert [name for name, _ in optimized.ctes] == ["q1"]
    (cte,) = [core for _name, core in optimized.ctes]
    assert [item.alias for item in cte.items] == ["c1_name"]


def test_main_select_items_are_never_pruned():
    # The decode contract: even a constant-only select keeps its items.
    core = SelectCore(
        (SelectItem(Lit(1), "a"), SelectItem(Lit(2), "b")),
        (TableRef("departments", "x"),),
    )
    optimized = optimize_statement(Statement((), (core,), ("a", "b")), OPT)
    assert optimized.selects[0].items == core.items


def test_pushdown_into_single_consumer_cte():
    consumer = SelectCore(
        (SelectItem(Col("z1", "c1_id"), "a"),),
        (CteRef("q1", "z1"),),
        BinOp("=", Col("z1", "c1_name"), Lit("Sales")),
    )
    optimized = optimize_statement(
        _statement([consumer], [("q1", _dept_cte())]), OPT
    )
    assert optimized.selects[0].where is None
    (cte,) = [core for _name, core in optimized.ctes]
    assert cte.where == BinOp("=", Col("x", "name"), Lit("Sales"))


def test_no_pushdown_into_row_numbering_cte():
    # Filtering before ROW_NUMBER would renumber rows: must not happen.
    cte = _dept_cte(SelectItem(RowNumber((Col("x", "id"),)), "idx"))
    consumer = SelectCore(
        (SelectItem(Col("z1", "idx"), "a"),),
        (CteRef("q1", "z1"),),
        BinOp("=", Col("z1", "c1_name"), Lit("Sales")),
    )
    optimized = optimize_statement(_statement([consumer], [("q1", cte)]), OPT)
    assert optimized.selects[0].where is not None
    (kept,) = [core for _name, core in optimized.ctes]
    assert kept.where is None


def test_no_pushdown_into_shared_cte():
    consumers = [
        SelectCore(
            (SelectItem(Col(alias, "c1_id"), "a"),),
            (CteRef("q1", alias),),
            BinOp("=", Col(alias, "c1_name"), Lit("Sales")),
        )
        for alias in ("z1", "z2")
    ]
    optimized = optimize_statement(
        _statement(consumers, [("q1", _dept_cte())]), OPT
    )
    (cte,) = [core for _name, core in optimized.ctes]
    assert cte.where is None  # two consumers: predicate stays outside


def test_multi_alias_conjuncts_stay_put():
    consumer = SelectCore(
        (SelectItem(Col("z1", "c1_id"), "a"),),
        (CteRef("q1", "z1"), TableRef("employees", "e")),
        BinOp("=", Col("z1", "c1_name"), Col("e", "dept")),
    )
    optimized = optimize_statement(
        _statement([consumer], [("q1", _dept_cte())]), OPT
    )
    assert optimized.selects[0].where is not None


# --------------------------------------------------------------------------
# Cross-statement shared scans.


def test_shared_scans_hoist_cross_statement_ctes():
    consumer = lambda alias: SelectCore(  # noqa: E731
        (SelectItem(Col(alias, "c1_name"), "a"),), (CteRef("q1", alias),)
    )
    s1 = _statement([consumer("z1")], [("q1", _dept_cte())])
    s2 = _statement([consumer("z2")], [("q1", _dept_cte())])
    rewritten, scans = extract_shared_scans([s1, s2])
    assert len(scans) == 1
    assert scans[0].create_sql.startswith("CREATE TABLE")
    for statement in rewritten:
        assert statement.ctes == ()
        (from_item,) = statement.selects[0].from_items
        assert isinstance(from_item, TableRef)
        assert from_item.table == scans[0].name


def test_no_shared_scan_for_single_statement_bodies():
    s1 = _statement(
        [
            SelectCore(
                (SelectItem(Col("z1", "c1_name"), "a"),), (CteRef("q1", "z1"),)
            )
        ],
        [("q1", _dept_cte())],
    )
    s2 = _statement([SelectCore((SelectItem(Lit(1), "a"),), ())])
    rewritten, scans = extract_shared_scans([s1, s2])
    assert scans == ()
    assert rewritten[0] == s1


# --------------------------------------------------------------------------
# End-to-end soundness: optimised ≡ unoptimised.


@pytest.mark.parametrize("name", sorted(NESTED_QUERIES))
@pytest.mark.parametrize("engine", ENGINES)
def test_paper_queries_identical_under_optimizer(db, name, engine):
    query = NESTED_QUERIES[name]
    expected = ShreddingPipeline(db.schema).run(query, db)
    actual = ShreddingPipeline(db.schema, OPT).run(query, db, engine=engine)
    assert bag_equal(expected, actual)


@pytest.mark.parametrize("name", sorted(FLAT_QUERIES))
def test_flat_queries_identical_under_optimizer(db, name):
    query = FLAT_QUERIES[name]
    plain = compile_flat_query(query, db.schema)
    optimized = compile_flat_query(query, db.schema, optimize=True)
    assert sorted(
        map(repr, plain.decode_rows(db.execute_sql(plain.sql)))
    ) == sorted(map(repr, optimized.decode_rows(db.execute_sql(optimized.sql))))


@pytest.mark.parametrize("engine", ENGINES)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # The database is read-only for the pipelines under test.
        HealthCheck.function_scoped_fixture,
    ],
)
@given(query=queries_with_nesting())
def test_generated_queries_identical_under_optimizer(
    small_random_db, engine, query
):
    db = small_random_db
    expected = ShreddingPipeline(db.schema).run(query, db)
    actual = ShreddingPipeline(db.schema, OPT).run(query, db, engine=engine)
    assert bag_equal(expected, actual)


def test_per_rule_flags_isolate_rules(db):
    # Every rule disabled individually still yields identical values.
    query = NESTED_QUERIES["Q6"]
    expected = ShreddingPipeline(db.schema).run(query, db)
    for flag in (
        "opt_fold",
        "opt_flatten",
        "opt_dedup",
        "opt_pushdown",
        "opt_prune",
        "opt_shared",
    ):
        options = SqlOptions(optimize=True, **{flag: False})
        actual = ShreddingPipeline(db.schema, options).run(
            query, db, engine="batched"
        )
        assert bag_equal(expected, actual), flag


def test_optimize_flag_is_part_of_the_plan_cache_key(schema):
    query = NESTED_QUERIES["Q4"]
    base = plan_key(query, schema, SqlOptions())
    optimized = plan_key(query, schema, SqlOptions(optimize=True))
    pruneless = plan_key(
        query, schema, SqlOptions(optimize=True, opt_prune=False)
    )
    assert len({base, optimized, pruneless}) == 3


def test_cached_optimized_plans_reuse_shared_scans(db):
    cache = PlanCache()
    pipeline = ShreddingPipeline(db.schema, OPT, cache=cache)
    from repro.nrc import builders as b

    query = b.for_(
        "d",
        b.table("departments"),
        lambda d: b.ret(
            b.record(
                dept=d["name"],
                emps=b.for_(
                    "e",
                    b.table("employees"),
                    lambda e: b.where(
                        b.eq(e["dept"], d["name"]), b.ret(e["name"])
                    ),
                ),
                cts=b.for_(
                    "c",
                    b.table("contacts"),
                    lambda c: b.where(
                        b.eq(c["dept"], d["name"]), b.ret(c["name"])
                    ),
                ),
            )
        ),
    )
    first = pipeline.compile(query)
    assert first.shared_scans, "sibling bags over one outer query must share"
    again = pipeline.compile(query)
    assert again is first
    expected = ShreddingPipeline(db.schema).run(query, db)
    for engine in ENGINES:
        assert bag_equal(expected, first.run(db, engine=engine))
