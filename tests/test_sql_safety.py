"""Robustness: awkward strings (quotes, unicode) through the full pipeline.

The generated SQL embeds string literals from queries and data; these tests
ensure quoting/escaping is correct end to end (no injection, no mangling).
"""

from __future__ import annotations

import pytest

from repro.backend.database import Database
from repro.nrc import builders as b
from repro.nrc.schema import Schema, TableSchema
from repro.nrc.semantics import evaluate
from repro.nrc.types import INT, STRING
from repro.pipeline.shredder import ShreddingPipeline, shred_run
from repro.sql.codegen import SqlOptions
from repro.values import bag_equal

AWKWARD = [
    "O'Brien",
    'double"quote',
    "semi;colon -- comment",
    "ünïcødé ⟨⟩",
    "back\\slash",
    "",
]

SCHEMA = Schema(
    (
        TableSchema(
            "things", (("id", INT), ("label", STRING)), key=("id",)
        ),
        TableSchema(
            "notes", (("id", INT), ("thing", STRING), ("text", STRING)),
            key=("id",),
        ),
    )
)


@pytest.fixture(scope="module")
def awkward_db():
    db = Database(SCHEMA)
    db.insert(
        "things",
        [{"id": i, "label": label} for i, label in enumerate(AWKWARD, 1)],
    )
    db.insert(
        "notes",
        [
            {"id": i, "thing": label, "text": f"note about {label}"}
            for i, label in enumerate(AWKWARD, 1)
        ],
    )
    return db


def _nested_query():
    return b.for_(
        "t",
        b.table("things"),
        lambda t: b.ret(
            b.record(
                label=t["label"],
                notes=b.for_(
                    "n",
                    b.table("notes"),
                    lambda n: b.where(
                        b.eq(n["thing"], t["label"]), b.ret(n["text"])
                    ),
                ),
            )
        ),
    )


class TestAwkwardData:
    def test_values_survive_round_trip(self, awkward_db):
        out = shred_run(_nested_query(), awkward_db)
        assert bag_equal(out, evaluate(_nested_query(), awkward_db))
        labels = {row["label"] for row in out}
        assert labels == set(AWKWARD)

    def test_every_row_keeps_its_notes(self, awkward_db):
        out = shred_run(_nested_query(), awkward_db)
        for row in out:
            assert row["notes"] == [f"note about {row['label']}"]

    def test_natural_scheme_too(self, awkward_db):
        out = ShreddingPipeline(SCHEMA, SqlOptions(scheme="natural")).run(
            _nested_query(), awkward_db
        )
        assert bag_equal(out, evaluate(_nested_query(), awkward_db))


class TestAwkwardLiterals:
    @pytest.mark.parametrize("needle", AWKWARD)
    def test_string_literal_in_condition(self, awkward_db, needle):
        query = b.for_(
            "t",
            b.table("things"),
            lambda t: b.where(
                b.eq(t["label"], b.const(needle)),
                b.ret(b.record(id=t["id"])),
            ),
        )
        out = shred_run(query, awkward_db)
        assert len(out) == 1

    def test_injectionish_literal_returns_nothing(self, awkward_db):
        query = b.for_(
            "t",
            b.table("things"),
            lambda t: b.where(
                b.eq(t["label"], b.const("' OR '1'='1")),
                b.ret(b.record(id=t["id"])),
            ),
        )
        assert shred_run(query, awkward_db) == []

    def test_literal_in_result_field(self, awkward_db):
        query = b.ret(b.record(v=b.const("it's ⟨fine⟩")))
        assert shred_run(query, awkward_db) == [{"v": "it's ⟨fine⟩"}]


class TestAwkwardTableNames:
    def test_quoted_identifiers(self):
        schema = Schema(
            (TableSchema("select", (("id", INT), ("from", STRING)), key=("id",)),),
        )
        db = Database(schema)
        db.insert("select", [{"id": 1, "from": "keyword"}])
        query = b.for_(
            "s", b.table("select"), lambda s: b.ret(b.record(f=s["from"]))
        )
        assert shred_run(query, db) == [{"f": "keyword"}]
