"""Tests for stitching (§5.2) and the end-to-end Theorem 4 property."""

from __future__ import annotations

import pytest

from repro.data import queries
from repro.errors import StitchError
from repro.normalise import normalise
from repro.nrc.semantics import evaluate
from repro.nrc.typecheck import infer
from repro.shred.indexes import index_fn_for, canonical_index_fn
from repro.shred.packages import shred_query_package
from repro.shred.semantics import run_package
from repro.shred.stitch import stitch
from repro.values import bag_equal, render


def _shred_run_stitch(query, schema, db, scheme="canonical", one_pass=True):
    nf = normalise(query, schema)
    a = infer(query, schema)
    package = shred_query_package(nf, a)
    index = index_fn_for(scheme, nf, db, schema)
    results = run_package(package, db, index)
    return stitch(results, index, one_pass=one_pass)


class TestRunningExample:
    def test_q6_stitches_to_section3_result(self, schema, db):
        """§3: the stitched Q(Qorg) result on the Fig. 3 instance."""
        out = _shred_run_stitch(queries.Q6, schema, db)
        expected = [
            {
                "department": "Product",
                "people": [
                    {"name": "Bert", "tasks": ["build"]},
                    {"name": "Pat", "tasks": ["buy"]},
                ],
            },
            {"department": "Quality", "people": []},
            {"department": "Research", "people": []},
            {
                "department": "Sales",
                "people": [
                    {"name": "Erik", "tasks": ["call", "enthuse"]},
                    {"name": "Fred", "tasks": ["call"]},
                    {"name": "Sue", "tasks": ["buy"]},
                ],
            },
        ]
        assert bag_equal(out, expected), render(out)


class TestTheorem4:
    """stitch(H⟦L⟧) = N⟦L⟧ for every paper query × indexing scheme."""

    @pytest.mark.parametrize("scheme", ["canonical", "natural", "flat"])
    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_nested_queries(self, name, scheme, schema, db):
        query = queries.NESTED_QUERIES[name]
        out = _shred_run_stitch(query, schema, db, scheme)
        assert bag_equal(out, evaluate(query, db)), name

    @pytest.mark.parametrize("name", sorted(queries.FLAT_QUERIES))
    def test_flat_queries(self, name, schema, db):
        query = queries.FLAT_QUERIES[name]
        out = _shred_run_stitch(query, schema, db)
        assert bag_equal(out, evaluate(query, db)), name

    @pytest.mark.parametrize("name", ["Q1", "Q6"])
    def test_on_random_database(self, name, schema, small_random_db):
        query = queries.NESTED_QUERIES[name]
        out = _shred_run_stitch(query, schema, small_random_db, "flat")
        assert bag_equal(out, evaluate(query, small_random_db))

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_on_empty_database(self, name, schema, empty_db):
        query = queries.NESTED_QUERIES[name]
        out = _shred_run_stitch(query, schema, empty_db)
        assert out == []


class TestOnePassEquivalence:
    """§8: one-pass stitching is an optimisation, not a semantic change."""

    @pytest.mark.parametrize("name", sorted(queries.NESTED_QUERIES))
    def test_naive_equals_one_pass(self, name, schema, db):
        query = queries.NESTED_QUERIES[name]
        fast = _shred_run_stitch(query, schema, db, one_pass=True)
        slow = _shred_run_stitch(query, schema, db, one_pass=False)
        assert fast == slow  # identical including order


class TestMultiplicity:
    def test_duplicate_rows_preserved(self, schema):
        """Bag semantics: duplicates survive shred + stitch (the property
        Van den Bussche's simulation loses, App. A)."""
        from repro.backend.database import Database
        from repro.nrc import builders as b

        db = Database(schema.__class__(schema.tables))
        db.insert("departments", [{"id": 1, "name": "D"}, {"id": 2, "name": "D"}])
        db.insert(
            "employees",
            [
                {"id": 1, "dept": "D", "name": "E", "salary": 5},
                {"id": 2, "dept": "D", "name": "E", "salary": 5},
            ],
        )
        query = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    name=d["name"],
                    emps=b.for_(
                        "e",
                        b.table("employees"),
                        lambda e: b.where(
                            b.eq(e["dept"], d["name"]), b.ret(e["name"])
                        ),
                    ),
                )
            ),
        )
        out = _shred_run_stitch(query, schema, db)
        assert bag_equal(out, evaluate(query, db))
        assert len(out) == 2
        assert all(len(row["emps"]) == 2 for row in out)


class TestErrors:
    def test_top_must_be_bag(self):
        from repro.shred.packages import PkgBase
        from repro.nrc.types import INT

        with pytest.raises(StitchError):
            stitch(PkgBase(INT), canonical_index_fn)

    def test_one_pass_requires_grouped(self, schema, db):
        nf = normalise(queries.Q4, schema)
        a = infer(queries.Q4, schema)
        package = run_package(shred_query_package(nf, a), db)
        from repro.shred.stitch import _stitch_bag

        with pytest.raises(StitchError):
            _stitch_bag(package, canonical_index_fn("top", (1,)), one_pass=True)
