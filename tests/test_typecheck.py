"""Tests for the λNRC type system (Fig. 12)."""

from __future__ import annotations

import pytest

from repro.errors import (
    TypeCheckError,
    UnboundVariableError,
    UnknownTableError,
)
from repro.nrc import builders as b
from repro.nrc import stdlib
from repro.nrc.ast import Empty, Lam, Var
from repro.nrc.typecheck import check, infer
from repro.nrc.types import BOOL, INT, STRING, BagType, FunType, bag, record_type


class TestBasics:
    def test_const_types(self, schema):
        assert infer(b.const(1), schema) == INT
        assert infer(b.const(True), schema) == BOOL
        assert infer(b.const("x"), schema) == STRING

    def test_unbound_var(self, schema):
        with pytest.raises(UnboundVariableError):
            infer(Var("nope"), schema)

    def test_env_lookup(self, schema):
        assert infer(Var("x"), schema, {"x": INT}) == INT

    def test_unknown_table(self, schema):
        with pytest.raises(UnknownTableError):
            infer(b.table("nope"), schema)

    def test_table_type(self, schema):
        t = infer(b.table("departments"), schema)
        assert t == bag(record_type(id=INT, name=STRING))


class TestPrims:
    def test_arith(self, schema):
        assert infer(b.add(b.const(1), b.const(2)), schema) == INT

    def test_eq_polymorphic(self, schema):
        assert infer(b.eq(b.const("a"), b.const("b")), schema) == BOOL
        assert infer(b.eq(b.const(1), b.const(2)), schema) == BOOL

    def test_eq_mismatch(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.eq(b.const(1), b.const("x")), schema)

    def test_ordering_rejects_bool(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.lt(b.const(True), b.const(False)), schema)

    def test_arity_error(self, schema):
        from repro.nrc.ast import Prim

        with pytest.raises(TypeCheckError):
            infer(Prim("not", (b.const(True), b.const(False))), schema)

    def test_prim_arg_must_be_base(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.not_(b.record(a=b.const(1))), schema)


class TestCollections:
    def test_return(self, schema):
        assert infer(b.ret(b.const(1)), schema) == bag(INT)

    def test_empty_needs_annotation(self, schema):
        with pytest.raises(TypeCheckError):
            infer(Empty(), schema)
        assert infer(Empty(INT), schema) == bag(INT)

    def test_union_infers_from_either_side(self, schema):
        term = b.union(Empty(), b.ret(b.const(1)))
        assert infer(term, schema) == bag(INT)
        term = b.union(b.ret(b.const(1)), Empty())
        assert infer(term, schema) == bag(INT)

    def test_union_mismatch(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.union(b.ret(b.const(1)), b.ret(b.const("x"))), schema)

    def test_for_comprehension(self, schema):
        q = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.ret(b.record(n=e["name"])),
        )
        assert infer(q, schema) == bag(record_type(n=STRING))

    def test_for_over_non_bag(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.for_("x", b.const(1), lambda x: b.ret(x)), schema)

    def test_for_body_must_be_bag(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.for_("e", b.table("employees"), lambda e: e["name"]), schema)

    def test_is_empty(self, schema):
        assert infer(b.is_empty(b.table("tasks")), schema) == BOOL

    def test_check_propagates_through_connectives(self, schema):
        # Normal forms conjoin emptiness probes over un-annotated ∅ into
        # compound conditions; checking must propagate Bool through
        # and/or/not instead of falling back to strict inference.
        from repro.nrc.ast import IsEmpty, Prim

        cond = Prim("and", (IsEmpty(Empty(None)), b.const(True)))
        check(cond, BOOL, schema)
        check(Prim("not", (IsEmpty(Empty(None)),)), BOOL, schema)
        with pytest.raises(TypeCheckError):
            check(cond, INT, schema)
        with pytest.raises(TypeCheckError):
            check(Prim("and", (b.const(1), b.const(True))), BOOL, schema)

    def test_where_through_if(self, schema):
        q = b.for_(
            "e",
            b.table("employees"),
            lambda e: b.where(b.gt(e["salary"], b.const(1000)), b.ret(e["name"])),
        )
        assert infer(q, schema) == bag(STRING)


class TestRecords:
    def test_record_and_projection(self, schema):
        r = b.record(a=b.const(1), z=b.const("s"))
        assert infer(r, schema) == record_type(a=INT, z=STRING)
        assert infer(r["z"], schema) == STRING

    def test_projection_missing_field(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.record(a=b.const(1))["b"], schema)

    def test_projection_from_non_record(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.const(1)["a"], schema)


class TestFunctions:
    def test_annotated_lam(self, schema):
        f = b.lam("x", lambda x: b.add(x, b.const(1)), INT)
        assert infer(f, schema) == FunType(INT, INT)

    def test_unannotated_lam_fails_standalone(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.lam("x", lambda x: x), schema)

    def test_unannotated_lam_in_application(self, schema):
        term = b.app(b.lam("x", lambda x: b.add(x, b.const(1))), b.const(41))
        assert infer(term, schema) == INT

    def test_check_pushes_into_lam(self, schema):
        check(b.lam("x", lambda x: x), FunType(INT, INT), schema)

    def test_check_annotation_conflict(self, schema):
        with pytest.raises(TypeCheckError):
            check(
                Lam("x", Var("x"), STRING),
                FunType(INT, INT),
                schema,
            )

    def test_application_of_non_function(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.app(b.const(1), b.const(2)), schema)


class TestConditionals:
    def test_if_infers(self, schema):
        term = b.if_(b.TRUE, b.const(1), b.const(2))
        assert infer(term, schema) == INT

    def test_if_branch_mismatch(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.if_(b.TRUE, b.const(1), b.const("x")), schema)

    def test_if_non_bool_condition(self, schema):
        with pytest.raises(TypeCheckError):
            infer(b.if_(b.const(1), b.const(1), b.const(2)), schema)

    def test_if_with_one_empty_branch(self, schema):
        term = b.if_(b.TRUE, b.ret(b.const(1)), Empty())
        assert infer(term, schema) == bag(INT)


class TestStdlib:
    def test_filter_types(self, schema):
        poor = b.lam("x", lambda x: b.lt(x["salary"], b.const(1000)))
        q = stdlib.filter_(poor, b.table("employees"))
        t = infer(q, schema)
        assert t == schema.signature("employees")

    def test_any_all_contains(self, schema):
        tasks_of = b.for_(
            "t", b.table("tasks"), lambda t: b.ret(t["task"])
        )
        assert infer(stdlib.contains(tasks_of, b.const("build")), schema) == BOOL
        p = b.lam("x", lambda x: b.eq(x, b.const("build")))
        assert infer(stdlib.any_(tasks_of, p), schema) == BOOL
        assert infer(stdlib.all_(tasks_of, p), schema) == BOOL

    def test_nested_result_type(self, schema):
        q = b.for_(
            "d",
            b.table("departments"),
            lambda d: b.ret(
                b.record(
                    name=d["name"],
                    emps=b.for_(
                        "e",
                        b.table("employees"),
                        lambda e: b.where(
                            b.eq(d["name"], e["dept"]), b.ret(e["name"])
                        ),
                    ),
                )
            ),
        )
        t = infer(q, schema)
        assert t == bag(record_type(name=STRING, emps=bag(STRING)))
