"""Tests for the λNRC type language (§2.1)."""

from __future__ import annotations

import pytest

from repro.errors import TypeCheckError
from repro.nrc.types import (
    BOOL,
    INT,
    STRING,
    BagType,
    FunType,
    RecordType,
    bag,
    is_base,
    is_flat,
    is_flat_relation,
    is_nested,
    iter_subtypes,
    nesting_degree,
    record_type,
    tuple_type,
)


class TestConstruction:
    def test_record_fields_sorted(self):
        a = record_type(b=INT, a=STRING)
        assert a.labels == ("a", "b")

    def test_record_equality_ignores_declaration_order(self):
        assert record_type(a=INT, b=STRING) == RecordType(
            (("b", STRING), ("a", INT))
        )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(TypeCheckError):
            RecordType((("a", INT), ("a", INT)))

    def test_field_type_lookup(self):
        a = record_type(name=STRING, salary=INT)
        assert a.field_type("salary") == INT
        with pytest.raises(TypeCheckError):
            a.field_type("missing")

    def test_tuple_type_labels(self):
        a = tuple_type(INT, STRING)
        assert a.labels == ("#1", "#2")
        assert a.field_type("#1") == INT

    def test_types_hashable(self):
        {bag(record_type(a=INT)), FunType(INT, BOOL)}

    def test_str_forms(self):
        assert str(bag(record_type(a=INT))) == "Bag ⟨a: Int⟩"
        assert str(FunType(INT, BOOL)) == "(Int → Bool)"


class TestPredicates:
    def test_is_base(self):
        assert is_base(INT)
        assert not is_base(record_type(a=INT))

    def test_is_flat(self):
        assert is_flat(record_type(a=INT, b=record_type(c=STRING)))
        assert not is_flat(bag(INT))
        assert not is_flat(FunType(INT, INT))

    def test_is_nested(self):
        assert is_nested(bag(record_type(a=bag(STRING))))
        assert not is_nested(FunType(INT, INT))
        assert not is_nested(bag(FunType(INT, INT)))

    def test_is_flat_relation(self):
        assert is_flat_relation(bag(record_type(a=INT, b=STRING)))
        assert not is_flat_relation(bag(record_type(a=bag(INT))))
        assert not is_flat_relation(record_type(a=INT))


class TestNestingDegree:
    def test_paper_example(self):
        # §3: nesting degree of Bag ⟨A: Bag Int, B: Bag String⟩ is 3.
        a = bag(record_type(A=bag(INT), B=bag(STRING)))
        assert nesting_degree(a) == 3

    def test_result_type(self):
        # §3: Result = Bag ⟨department: String, people: Bag ⟨name, tasks: Bag String⟩⟩
        result = bag(
            record_type(
                department=STRING,
                people=bag(record_type(name=STRING, tasks=bag(STRING))),
            )
        )
        assert nesting_degree(result) == 3

    def test_base(self):
        assert nesting_degree(INT) == 0


class TestIterSubtypes:
    def test_preorder(self):
        a = bag(record_type(x=INT))
        subtypes = list(iter_subtypes(a))
        assert subtypes[0] == a
        assert INT in subtypes

    def test_fun_type_included(self):
        a = FunType(INT, bag(BOOL))
        assert BOOL in list(iter_subtypes(a))
