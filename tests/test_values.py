"""Tests for nested-value canonicalisation and multiset equality."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.values import bag_equal, bag_size, canonical, render, sort_bag


class TestCanonical:
    def test_base_values_distinct(self):
        assert canonical(1) != canonical(True)
        assert canonical(0) != canonical(False)
        assert canonical("1") != canonical(1)

    def test_record_label_order_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_bag_order_irrelevant(self):
        assert canonical([1, 2, 3]) == canonical([3, 1, 2])

    def test_bag_multiplicity_matters(self):
        assert canonical([1, 1, 2]) != canonical([1, 2, 2])
        assert canonical([1, 1]) != canonical([1])

    def test_nested_bags(self):
        left = [{"xs": [1, 2]}, {"xs": []}]
        right = [{"xs": []}, {"xs": [2, 1]}]
        assert canonical(left) == canonical(right)

    def test_canonical_is_hashable(self):
        hash(canonical([{"a": [1, "x", True]}]))


class TestBagEqual:
    def test_permutation(self):
        assert bag_equal([1, 2, 2, 3], [2, 3, 2, 1])

    def test_not_set_semantics(self):
        assert not bag_equal([1, 1], [1])

    def test_deep_permutation(self):
        left = [{"d": "Sales", "ppl": [{"n": "Erik"}, {"n": "Fred"}]}]
        right = [{"d": "Sales", "ppl": [{"n": "Fred"}, {"n": "Erik"}]}]
        assert bag_equal(left, right)

    def test_mismatch_inside(self):
        assert not bag_equal([{"xs": [1]}], [{"xs": [2]}])


class TestSortBag:
    def test_deterministic(self):
        assert sort_bag([3, 1, 2]) == [1, 2, 3]

    def test_mixed_types(self):
        out = sort_bag(["b", "a"])
        assert out == ["a", "b"]


class TestRender:
    def test_record(self):
        assert render({"name": "Bert"}) == "⟨name = “Bert”⟩"

    def test_empty_bag(self):
        assert render([]) == "∅"

    def test_booleans(self):
        assert render(True) == "true"
        assert render(False) == "false"

    def test_small_bag_inline(self):
        assert render([1, 2]) == "[1, 2]"


class TestBagSize:
    def test_flat(self):
        assert bag_size([1, 2, 3]) == 3

    def test_nested(self):
        assert bag_size([{"xs": [1, 2]}, {"xs": []}]) == 4

    def test_scalar(self):
        assert bag_size(42) == 0


nested_values = st.recursive(
    st.integers(-5, 5) | st.booleans() | st.text(max_size=3),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.sampled_from(["a", "b", "c"]), children, max_size=3),
    max_leaves=12,
)


@given(nested_values)
def test_canonical_idempotent_under_self(value):
    assert canonical(value) == canonical(value)


@given(st.lists(st.integers(-3, 3), max_size=6))
def test_bag_equal_reflexive_under_shuffle(xs):
    assert bag_equal(xs, list(reversed(xs)))
