"""Property tests for nested-value utilities and flattening round trips."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.flatten.unflatten import flatten_value, unflatten_value
from repro.nrc.types import BOOL, INT, STRING, RecordType
from repro.shred.indexes import FlatIndex, NaturalIndex
from repro.shred.shred_types import INDEX
from repro.values import bag_equal, canonical, dedup_nested

nested_values = st.recursive(
    st.integers(-5, 5) | st.booleans() | st.sampled_from(["a", "b", "c"]),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.sampled_from(["x", "y"]), children, max_size=2),
    max_leaves=10,
)


@given(nested_values)
def test_dedup_idempotent(value):
    once = dedup_nested(value)
    assert dedup_nested(once) == once


@given(st.lists(st.integers(-3, 3), max_size=8))
def test_dedup_is_set_of_bag(xs):
    assert sorted(dedup_nested(xs)) == sorted(set(xs))


@given(nested_values, nested_values)
def test_bag_equal_implies_equal_dedup(a, b):
    if bag_equal(a, b):
        assert canonical(dedup_nested(a)) == canonical(dedup_nested(b))


@given(st.lists(st.integers(-3, 3), max_size=8))
def test_dedup_subset_of_original(xs):
    deduped = dedup_nested(xs)
    assert len(deduped) <= len(xs)
    assert set(map(canonical, deduped)) == set(map(canonical, xs))


# --------------------------------------------------------------------------
# Flattening round trips over random flat shredded rows (Prop. 30).

ROW_TYPE = RecordType(
    (
        ("item", RecordType((("n", STRING), ("k", INT), ("f", BOOL), ("sub", INDEX)))),
        ("outer", INDEX),
    )
)

flat_indexes = st.builds(
    FlatIndex, st.sampled_from(["a", "b", "top"]), st.integers(1, 9)
)

rows = st.fixed_dictionaries(
    {
        "item": st.fixed_dictionaries(
            {
                "n": st.sampled_from(["x", "y"]),
                "k": st.integers(-9, 9),
                "f": st.booleans(),
                "sub": flat_indexes,
            }
        ),
        "outer": flat_indexes,
    }
)


@given(rows)
def test_flatten_unflatten_round_trip_flat(row):
    cells = flatten_value(ROW_TYPE, row)
    assert unflatten_value(ROW_TYPE, cells) == row


natural_indexes = st.builds(
    NaturalIndex,
    st.sampled_from(["a", "b"]),
    st.lists(st.integers(1, 5), min_size=0, max_size=3).map(tuple),
)

natural_rows = st.fixed_dictionaries(
    {
        "item": st.fixed_dictionaries(
            {
                "n": st.sampled_from(["x", "y"]),
                "k": st.integers(-9, 9),
                "f": st.booleans(),
                "sub": natural_indexes,
            }
        ),
        "outer": natural_indexes,
    }
)


@given(natural_rows)
def test_flatten_unflatten_round_trip_natural(row):
    width = lambda path: 3  # noqa: E731 — max key arity in the strategy
    cells = flatten_value(ROW_TYPE, row, width)
    assert unflatten_value(ROW_TYPE, cells, width, natural=True) == row
