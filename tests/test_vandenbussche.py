"""Tests for Van den Bussche's simulation and the App. A counterexample."""

from __future__ import annotations

from repro.baselines import vandenbussche as V


class TestFlatRepresentation:
    def test_flat_rep_counts(self):
        r, s = V.paper_example()
        rep = V.flat_rep(r, "r")
        assert len(rep.outer) == 2
        assert len(rep.inner) == 2
        assert rep.tuple_count == 4
        s_rep = V.flat_rep(s, "s")
        assert len(s_rep.inner) == 3

    def test_duplicate_outer_rows_get_distinct_ids(self):
        rel = V.NestedRelation(((1, (1,)), (1, (1,))))
        rep = V.flat_rep(rel, "x")
        ids = [row_id for _, row_id in rep.outer]
        assert len(set(ids)) == 2

    def test_active_domain(self):
        r1, s1 = V.paper_flat_reps()
        adom = V.active_domain(r1, s1)
        # {1, 2, 3, 4} data values plus the two (shared) ids.
        assert len(adom) == 6


class TestAppendixA:
    """The exact numbers of App. A."""

    def test_t1_has_72_tuples(self):
        r1, s1 = V.paper_flat_reps()
        t = V.vdb_union(r1, s1)
        assert len(t.outer) == 72

    def test_natural_representation_needs_9(self):
        r, s = V.paper_example()
        assert V.natural_tuple_count(r, s) == 9

    def test_set_semantics_decodes_correctly(self):
        r, s = V.paper_example()
        r1, s1 = V.paper_flat_reps()
        t = V.vdb_union(r1, s1)
        assert V.decode_sets(t) == V.nested_set(V.direct_union(r, s))

    def test_union_not_commutative_under_simulation(self):
        """R∪S and S∪R simulate to different tuple counts (174 vs 150):
        neither represents the correct multiset."""
        r1, s1 = V.paper_flat_reps()
        assert V.vdb_union(r1, s1).tuple_count == 174
        assert V.vdb_union(s1, r1).tuple_count == 150

    def test_bag_reading_is_wrong(self):
        r, s = V.paper_example()
        r1, s1 = V.paper_flat_reps()
        t = V.vdb_union(r1, s1)
        assert V.bag_canonical(V.simulated_bag(t)) != V.bag_canonical(
            V.direct_union(r, s)
        )

    def test_direct_union_is_correct_bag(self):
        r, s = V.paper_example()
        union = V.direct_union(r, s)
        assert len(union.rows) == 4
        assert union.tuple_count == 9


class TestBlowupScaling:
    """|T1| ∈ O(|adom|·|R1| + |adom|²·|S1|) — quadratic in the input."""

    def test_quadratic_growth(self):
        sizes = []
        for n in (2, 4, 8):
            r = V.NestedRelation(tuple((i, (i,)) for i in range(n)))
            s = V.NestedRelation(tuple((i, (i,)) for i in range(n)))
            r1 = V.flat_rep(r, "id")
            s1 = V.flat_rep(s, "id")
            adom = V.active_domain(r1, s1)
            t = V.vdb_union(r1, s1)
            expected = len(r1.outer) * len(adom) + len(s1.outer) * len(
                adom
            ) * (len(adom) - 1)
            assert len(t.outer) == expected
            sizes.append((n, len(t.outer), V.natural_tuple_count(r, s)))
        # Blowup ratio grows superlinearly while natural stays linear.
        ratios = [sim / nat for _, sim, nat in sizes]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_set_decode_correct_at_scale(self):
        r = V.NestedRelation(tuple((i, (i, i + 1)) for i in range(5)))
        s = V.NestedRelation(tuple((i, (i * 2,)) for i in range(3)))
        t = V.vdb_union(V.flat_rep(r, "id"), V.flat_rep(s, "id"))
        assert V.decode_sets(t) == V.nested_set(V.direct_union(r, s))
