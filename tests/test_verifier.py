"""Tests for the ``-verify-each`` stage verifiers (:mod:`repro.check`).

Two halves:

* **silence** — the verifiers accept everything the real pipeline produces,
  across paper queries, random well-typed queries, schemes and optimizer
  settings (a verifier that cries wolf is worse than none);
* **mutation proofs** — hand-corrupted IR and a deliberately broken
  optimizer rule are rejected at the *right stage with the right rule
  name*: the normalise-stage verifier catches unbound/duplicated/captured
  variables, the shred-stage verifier catches package-shape and type
  regressions, the codegen-stage verifier catches unresolvable SQL, and
  the per-rewrite verifier catches an unguarded predicate pushdown the
  moment it filters a ROW_NUMBER CTE.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.check import (
    VerifierError,
    verification_enabled,
    verify_compiled_sql,
    verify_normal_form,
    verify_rewrite,
    verify_shredded_package,
    verify_statement,
)
from repro.data.organisation import ORGANISATION_SCHEMA
from repro.data.queries import FLAT_QUERIES, NESTED_QUERIES
from repro.normalise import normalise
from repro.normalise.normal_form import (
    Comprehension,
    Generator,
    NormQuery,
    RecordNF,
    TRUE_NF,
    VarField,
)
from repro.nrc import builders as b
from repro.nrc.ast import Param, Project, Var
from repro.nrc.typecheck import infer
from repro.nrc.types import INT, STRING, BagType, RecordType
from repro.pipeline.shredder import ShreddingPipeline
from repro.shred.packages import pmap, shred_query_package
from repro.sql.ast import (
    BinOp,
    Col,
    CteRef,
    Lit,
    Placeholder,
    RowNumber,
    SelectCore,
    SelectItem,
    Statement,
    SubqueryRef,
    TableRef,
)
from repro.sql.codegen import SqlOptions

from .strategies import queries_with_nesting

SCHEMA = ORGANISATION_SCHEMA
ALL_QUERIES = {**FLAT_QUERIES, **NESTED_QUERIES}

#: Option spread for the silence tests: every scheme/optimizer combination
#: the pipeline supports, each with verification forced on.
OPTION_SPREAD = [
    SqlOptions(verify=True),
    SqlOptions(verify=True, optimize=True),
    SqlOptions(verify=True, scheme="natural"),
    SqlOptions(verify=True, ordered=True),
    SqlOptions(verify=True, inline_with=True, optimize=True),
    SqlOptions(verify=True, dedup_cte=True, optimize=True),
]


def _proj(var: str, label: str) -> Project:
    return Project(Var(var), label)


# ==========================================================================
# Silence: the verifiers accept everything the pipeline produces.


class TestVerifierSilence:
    @pytest.mark.parametrize("name", sorted(ALL_QUERIES))
    def test_paper_queries_verify_clean(self, name):
        for options in OPTION_SPREAD:
            compiled = ShreddingPipeline(SCHEMA, options).compile(
                ALL_QUERIES[name]
            )
            assert compiled.query_count >= 1, (name, options)

    @given(queries_with_nesting())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
        ],
    )
    def test_random_well_typed_queries_verify_clean(self, query):
        """The headline property: verification never fires on output the
        pipeline actually produced, under either scheme, with and without
        the optimizer."""
        for options in (
            SqlOptions(verify=True),
            SqlOptions(verify=True, optimize=True),
            SqlOptions(verify=True, scheme="natural"),
        ):
            ShreddingPipeline(SCHEMA, options).compile(query)


class TestEnablementResolution:
    def test_explicit_option_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert verification_enabled(SqlOptions(verify=True)) is True
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verification_enabled(SqlOptions(verify=False)) is False

    def test_env_wins_over_autodetect(self, monkeypatch):
        for falsy in ("0", "false", "off", "no", ""):
            monkeypatch.setenv("REPRO_VERIFY", falsy)
            assert verification_enabled(None) is False, falsy
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verification_enabled(None) is True

    def test_on_under_pytest_off_in_production(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        # Under pytest this very process carries the marker env var.
        assert verification_enabled(None) is True
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("CI", raising=False)
        assert verification_enabled(None) is False
        monkeypatch.setenv("CI", "true")
        assert verification_enabled(None) is True

    def test_verify_is_a_validated_option(self):
        from repro.errors import SqlGenerationError

        with pytest.raises(SqlGenerationError):
            SqlOptions(verify="yes")

    def test_verify_off_skips_stage_checks(self, monkeypatch):
        """With verification resolved off, even a pipeline whose optimizer
        is sabotaged compiles without a VerifierError (production shape)."""
        monkeypatch.setenv("REPRO_VERIFY", "0")
        from repro.sql import optimizer

        monkeypatch.setitem(
            optimizer.STATEMENT_RULES, "opt_fold", _sabotaged_fold
        )
        compiled = ShreddingPipeline(
            SCHEMA, SqlOptions(optimize=True)
        ).compile(_pushdown_bait_query())
        assert compiled.query_count == 2  # compiled; nobody checked


# ==========================================================================
# Stage: normalise — hygiene and type preservation on corrupted IR.


def _comp(generators, where=TRUE_NF, body=None):
    body = body or RecordNF((("name", VarField("x", "name")),))
    return Comprehension(tuple(generators), where, body, None)


class TestNormaliseStage:
    def test_unbound_variable_rejected(self):
        nf = NormQuery(
            (
                Comprehension(
                    (Generator("x", "departments"),),
                    TRUE_NF,
                    RecordNF((("name", VarField("y", "name")),)),
                    None,
                ),
            )
        )
        with pytest.raises(VerifierError) as err:
            verify_normal_form(nf, SCHEMA)
        assert err.value.stage == "normalise"
        assert err.value.rule == "variable-hygiene"
        assert "y.name" in str(err.value)

    def test_duplicate_binder_rejected(self):
        nf = NormQuery(
            (
                _comp(
                    [Generator("x", "departments"), Generator("x", "employees")]
                ),
            )
        )
        with pytest.raises(VerifierError) as err:
            verify_normal_form(nf, SCHEMA)
        assert err.value.rule == "variable-hygiene"
        assert "duplicate" in err.value.detail

    def test_capture_of_enclosing_binder_rejected(self):
        # Inner bag re-binds the outer comprehension's variable: legal
        # λ-calculus, but the normaliser freshens — so this is a rewrite bug.
        inner = NormQuery(
            (
                Comprehension(
                    (Generator("x", "employees"),),
                    TRUE_NF,
                    RecordNF((("emp", VarField("x", "name")),)),
                    "a",
                ),
            )
        )
        nf = NormQuery(
            (
                Comprehension(
                    (Generator("x", "departments"),),
                    TRUE_NF,
                    RecordNF((("people", inner),)),
                    None,
                ),
            )
        )
        with pytest.raises(VerifierError) as err:
            verify_normal_form(nf, SCHEMA)
        assert err.value.rule == "variable-hygiene"
        assert "captures" in err.value.detail

    def test_unknown_table_rejected(self):
        nf = NormQuery((_comp([Generator("x", "does_not_exist")]),))
        with pytest.raises(VerifierError) as err:
            verify_normal_form(nf, SCHEMA)
        assert err.value.rule == "unknown-table"

    def test_type_regression_rejected(self):
        query = b.for_(
            "x",
            b.table("departments"),
            b.ret(b.record(name=_proj("x", "name"))),
        )
        nf = normalise(query, SCHEMA)
        wrong = BagType(RecordType((("name", INT),)))
        with pytest.raises(VerifierError) as err:
            verify_normal_form(nf, SCHEMA, expected_type=wrong)
        assert err.value.stage == "normalise"
        assert err.value.rule == "type-preservation"


# ==========================================================================
# Stage: shred — package shape and per-path typing.


def _nested_query():
    return b.for_(
        "d",
        b.table("departments"),
        b.ret(
            b.record(
                dept=_proj("d", "name"),
                people=b.for_(
                    "e",
                    b.table("employees"),
                    b.where(
                        b.eq(_proj("e", "dept"), _proj("d", "name")),
                        b.ret(b.record(emp=_proj("e", "name"))),
                    ),
                ),
            )
        ),
    )


class TestShredStage:
    def test_wrong_result_type_rejected(self):
        query = _nested_query()
        nf = normalise(query, SCHEMA)
        result_type = infer(query, SCHEMA)
        package = shred_query_package(nf, result_type)
        wrong = BagType(RecordType((("other", STRING),)))
        with pytest.raises(VerifierError) as err:
            verify_shredded_package(package, wrong, SCHEMA)
        assert err.value.stage == "shred"
        assert err.value.rule == "package-shape"

    def test_non_shredquery_annotation_rejected(self):
        query = _nested_query()
        nf = normalise(query, SCHEMA)
        result_type = infer(query, SCHEMA)
        package = pmap(lambda _: "bogus", shred_query_package(nf, result_type))
        with pytest.raises(VerifierError) as err:
            verify_shredded_package(package, result_type, SCHEMA)
        assert err.value.rule == "package-shape"

    def test_swapped_path_annotations_rejected(self):
        """Every path's shredded query must check against *that* path's row
        type: grafting the outer query onto the inner path is a type error
        the Fig. 13 checker reports through the verifier."""
        query = _nested_query()
        nf = normalise(query, SCHEMA)
        result_type = infer(query, SCHEMA)
        package = shred_query_package(nf, result_type)
        from repro.shred.packages import annotations

        (_, outer), *_rest = list(annotations(package))
        corrupted = pmap(lambda _: outer, package)
        with pytest.raises(VerifierError) as err:
            verify_shredded_package(corrupted, result_type, SCHEMA)
        assert err.value.stage == "shred"
        assert err.value.rule == "type-preservation"
        assert "↓" in str(err.value)  # names the failing path


# ==========================================================================
# Stage: codegen — SQL well-formedness on hand-built statements.


def _stmt(cores, ctes=(), columns=("name",), order_by=()):
    return Statement(tuple(ctes), tuple(cores), tuple(columns), tuple(order_by))


def _core(items, from_items, where=None):
    return SelectCore(tuple(items), tuple(from_items), where)


def _item(alias, expr=None):
    return SelectItem(expr if expr is not None else Col("d", alias), alias)


class TestCodegenStage:
    def test_unknown_table_rejected(self):
        stmt = _stmt([_core([_item("name")], [TableRef("nope", "d")])])
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert err.value.stage == "codegen"
        assert "unknown table 'nope'" in err.value.detail

    def test_out_of_scope_alias_rejected(self):
        stmt = _stmt(
            [
                _core(
                    [SelectItem(Col("z", "name"), "name")],
                    [TableRef("departments", "d")],
                )
            ]
        )
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert "not in scope" in err.value.detail

    def test_nonexistent_column_rejected(self):
        stmt = _stmt(
            [
                _core(
                    [SelectItem(Col("d", "salary"), "name")],
                    [TableRef("departments", "d")],
                )
            ]
        )
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert "does not exist" in err.value.detail

    def test_forward_cte_reference_rejected(self):
        # q1 references q2, defined *later*: valid in no WITH dialect we
        # target, and the degenerate form of a CTE cycle.
        uses_q2 = _core(
            [SelectItem(Col("c", "name"), "name")], [CteRef("q2", "c")]
        )
        defines = _core(
            [SelectItem(Col("d", "name"), "name")],
            [TableRef("departments", "d")],
        )
        stmt = _stmt(
            [_core([SelectItem(Col("c", "name"), "name")], [CteRef("q1", "c")])],
            ctes=[("q1", uses_q2), ("q2", defines)],
        )
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert "forward or cyclic" in err.value.detail

    def test_duplicate_alias_rejected(self):
        stmt = _stmt(
            [
                _core(
                    [SelectItem(Col("d", "name"), "name")],
                    [
                        TableRef("departments", "d"),
                        TableRef("employees", "d"),
                    ],
                )
            ]
        )
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert "duplicate alias" in err.value.detail

    def test_correlated_from_subquery_rejected(self):
        # SQLite has no LATERAL: a FROM-subquery must not see its siblings.
        correlated = _core(
            [SelectItem(Col("d", "name"), "name")], [TableRef("employees", "e")]
        )
        stmt = _stmt(
            [
                _core(
                    [SelectItem(Col("s", "name"), "name")],
                    [
                        TableRef("departments", "d"),
                        SubqueryRef(correlated, "s"),
                    ],
                )
            ]
        )
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert "not in scope" in err.value.detail

    def test_decode_contract_mismatch_rejected(self):
        stmt = _stmt(
            [
                _core(
                    [SelectItem(Col("d", "name"), "wrong_alias")],
                    [TableRef("departments", "d")],
                )
            ],
            columns=("name",),
        )
        with pytest.raises(VerifierError) as err:
            verify_statement(stmt, SCHEMA)
        assert err.value.rule == "decode-contract"

    def test_placeholder_bookkeeping_rejected(self):
        """A compiled member whose declared param set disagrees with the
        placeholders actually in its statement is rejected."""
        query = b.for_(
            "x",
            b.table("employees"),
            b.where(
                b.ge(_proj("x", "salary"), Param("min_salary", INT)),
                b.ret(b.record(name=_proj("x", "name"))),
            ),
        )
        pipeline = ShreddingPipeline(SCHEMA, SqlOptions(verify=False))
        compiled = pipeline.compile(query)
        member = compiled.sql_package.annotation
        assert member.params == ("min_salary",)
        member.params = ()  # corrupt the bookkeeping
        with pytest.raises(VerifierError) as err:
            verify_compiled_sql(member, SCHEMA)
        assert err.value.rule == "placeholder-set"

    def test_column_layout_mismatch_rejected(self):
        query = b.for_(
            "x",
            b.table("departments"),
            b.ret(b.record(name=_proj("x", "name"))),
        )
        pipeline = ShreddingPipeline(SCHEMA, SqlOptions(verify=False))
        compiled = pipeline.compile(query)
        member = compiled.sql_package.annotation
        member.columns = tuple(reversed(member.columns))
        with pytest.raises(VerifierError) as err:
            verify_compiled_sql(member, SCHEMA)
        assert err.value.rule == "column-layout"


# ==========================================================================
# Stage: optimize — per-rewrite invariants, and the mutation proof.


def _numbered_cte_statement(extra_where=None):
    """WITH q1 AS (SELECT …, ROW_NUMBER() … FROM departments) SELECT …"""
    numbering = _core(
        [
            SelectItem(Col("x", "name"), "c1_name"),
            SelectItem(RowNumber((Col("x", "id"),)), "idx"),
        ],
        [TableRef("departments", "x")],
        where=extra_where,
    )
    main = _core(
        [
            SelectItem(Col("z", "c1_name"), "name"),
            SelectItem(Col("z", "idx"), "outer_dyn1"),
        ],
        [CteRef("q1", "z")],
    )
    return _stmt([main], ctes=[("q1", numbering)], columns=("name", "outer_dyn1"))


class TestRewriteVerifier:
    def test_malformed_rewrite_rejected(self):
        before = _numbered_cte_statement()
        after = _stmt(
            [
                _core(
                    [SelectItem(Col("d", "name"), "name")],
                    [TableRef("nope", "d")],
                )
            ],
            columns=("name",),
        )
        with pytest.raises(VerifierError) as err:
            verify_rewrite(before, after, "opt_fold", SCHEMA)
        assert err.value.stage == "optimize"
        assert err.value.rule == "opt_fold"
        assert "malformed" in err.value.detail

    def test_invented_placeholder_rejected(self):
        before = _numbered_cte_statement()
        main = before.selects[0]
        after = Statement(
            before.ctes,
            (
                SelectCore(
                    main.items,
                    main.from_items,
                    BinOp("=", Col("z", "c1_name"), Placeholder("sneaky")),
                ),
            ),
            before.columns,
            before.order_by,
        )
        with pytest.raises(VerifierError) as err:
            verify_rewrite(before, after, "opt_prune", SCHEMA)
        assert err.value.rule == "opt_prune"
        assert ":sneaky" in err.value.detail

    def test_added_union_branch_rejected(self):
        before = _numbered_cte_statement()
        after = Statement(
            before.ctes,
            before.selects + before.selects,
            before.columns,
            before.order_by,
        )
        with pytest.raises(VerifierError) as err:
            verify_rewrite(before, after, "opt_dedup", SCHEMA)
        assert "UNION branches" in err.value.detail

    def test_filtering_a_numbering_cte_rejected(self):
        before = _numbered_cte_statement()
        after = _numbered_cte_statement(
            extra_where=BinOp("=", Col("x", "name"), Lit("Sales"))
        )
        with pytest.raises(VerifierError) as err:
            verify_rewrite(before, after, "opt_pushdown", SCHEMA)
        assert err.value.stage == "optimize"
        assert err.value.rule == "opt_pushdown"
        assert "ROW_NUMBER" in err.value.detail


def _pushdown_bait_query():
    """Nested query whose inner statement carries a ROW_NUMBER CTE *and* an
    outer WHERE conjunct over only that CTE's alias (``d.name = 'Sales'``
    lives on the outer variable inside the inner comprehension) — exactly
    what an unguarded pushdown would wrongly move inside the numbering."""
    return b.for_(
        "d",
        b.table("departments"),
        b.ret(
            b.record(
                dept=_proj("d", "name"),
                people=b.for_(
                    "e",
                    b.table("employees"),
                    b.where(
                        b.and_(
                            b.eq(_proj("e", "dept"), _proj("d", "name")),
                            b.eq(_proj("d", "name"), b.const("Sales")),
                        ),
                        b.ret(b.record(emp=_proj("e", "name"))),
                    ),
                ),
            )
        ),
    )


def _unguarded_pushdown(statement: Statement) -> Statement:
    """``_rule_pushdown`` with the §8 ROW_NUMBER guard deleted — the exact
    mutation the per-rewrite verifier exists to catch."""
    from repro.sql.optimizer import (
        _conjoin,
        _conjuncts,
        _cte_refcounts,
        _map_cores,
        _push_into,
        _rewrite_through,
        _single_alias,
    )

    refcounts = _cte_refcounts(statement)
    ctes = dict(statement.ctes)
    pushed_into_cte: dict = {}

    def push_core(core: SelectCore) -> SelectCore:
        if core.where is None:
            return core
        by_alias = {
            item.alias: (item.cte, ctes[item.cte])
            for item in core.from_items
            if isinstance(item, CteRef) and item.cte in ctes
        }
        remaining = []
        for conjunct in _conjuncts(core.where):
            alias = _single_alias(conjunct)
            if alias not in by_alias:
                remaining.append(conjunct)
                continue
            cte_name, target = by_alias[alias]
            if refcounts.get(cte_name, 0) != 1:
                remaining.append(conjunct)
                continue
            # NOTE: no _core_has_rownumber_items(target) check — the bug.
            item_map = {si.alias: si.expr for si in target.items}
            rewritten = _rewrite_through(conjunct, alias, item_map)
            if rewritten is None:
                remaining.append(conjunct)
                continue
            pushed_into_cte.setdefault(cte_name, []).append(rewritten)
        if len(remaining) == len(_conjuncts(core.where)):
            return core
        return SelectCore(core.items, core.from_items, _conjoin(remaining))

    rewritten = _map_cores(statement, push_core)
    if not pushed_into_cte:
        return rewritten
    new_ctes = tuple(
        (
            name,
            _push_into(core, _conjoin(pushed_into_cte[name]))
            if name in pushed_into_cte
            else core,
        )
        for name, core in rewritten.ctes
    )
    return Statement(
        new_ctes, rewritten.selects, rewritten.columns, rewritten.order_by
    )


def _sabotaged_fold(statement: Statement) -> Statement:
    """A 'fold' that drops every statement's WHERE clause entirely —
    changes results, but stays structurally well-formed; used only to show
    verify-off compiles don't run the checks."""
    return Statement(
        statement.ctes,
        tuple(
            SelectCore(core.items, core.from_items, None)
            for core in statement.selects
        ),
        statement.columns,
        statement.order_by,
    )


class TestMutationProof:
    """The LLVM ``-verify-each`` pitch, end to end: break one optimizer
    rule, and the *pipeline itself* rejects the compile, attributing the
    failure to that rule at the optimize stage."""

    def test_unguarded_pushdown_caught_at_rule_granularity(self, monkeypatch):
        from repro.sql import optimizer

        # First, sanity: the bait compiles cleanly with the real rule.
        options = SqlOptions(verify=True, optimize=True)
        ShreddingPipeline(SCHEMA, options).compile(_pushdown_bait_query())

        monkeypatch.setitem(
            optimizer.STATEMENT_RULES, "opt_pushdown", _unguarded_pushdown
        )
        with pytest.raises(VerifierError) as err:
            ShreddingPipeline(SCHEMA, options).compile(_pushdown_bait_query())
        assert err.value.stage == "optimize"
        assert err.value.rule == "opt_pushdown"
        assert "ROW_NUMBER" in err.value.detail

    def test_broken_rule_passes_silently_without_verification(
        self, monkeypatch
    ):
        """The control group: same sabotage, verification off — the broken
        plan sails through (which is exactly why verify-each exists)."""
        from repro.sql import optimizer

        monkeypatch.setitem(
            optimizer.STATEMENT_RULES, "opt_pushdown", _unguarded_pushdown
        )
        compiled = ShreddingPipeline(
            SCHEMA, SqlOptions(verify=False, optimize=True)
        ).compile(_pushdown_bait_query())
        assert "opt_pushdown" in compiled.fired_rules
