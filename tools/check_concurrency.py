#!/usr/bin/env python3
"""Concurrency lint for the serving stack (stdlib ``ast``, no dependencies).

The asyncio service and the shard fleet live or die by one rule: nothing
blocks the event loop.  This tool walks ``src/repro/service/`` and
``src/repro/shard/`` and flags the patterns that have historically snuck
blocking work onto a loop thread:

    CC001  a blocking call inside an ``async def`` body — ``time.sleep``,
           ``sqlite3.connect``, ``socket.create_connection``, the blocking
           socket methods (``recv``/``sendall``/``accept``/``makefile``/…),
           or ``subprocess``/``os.system`` — that is not routed through
           ``asyncio.to_thread`` / ``loop.run_in_executor``
    CC002  a synchronous service-client round-trip (``.request(…)`` /
           ``.ping(…)``) inside an ``async def`` without ``await``: either
           it blocks the loop (sync client) or it silently drops the
           coroutine (async client, missing await)
    CC003  a bare ``except:`` anywhere — it swallows ``CancelledError``
           and ``KeyboardInterrupt``, breaking task cancellation and drain

Calls are sanctioned when they appear inside an ``await`` expression or as
arguments to ``asyncio.gather`` / ``create_task`` / ``ensure_future`` /
``wait_for`` / ``shield`` / ``to_thread`` / ``run_in_executor``: those
either run on the loop properly or are explicitly off-loop.

Run from the repository root::

    python tools/check_concurrency.py            # lint the serving stack
    python tools/check_concurrency.py PATH...    # lint specific files/dirs

Exit status 1 iff any finding.  ``lint_source`` is importable for tests.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path

#: (module, attribute) calls that block the calling thread.
BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("sqlite3", "connect"),
    ("socket", "create_connection"),
    ("socket", "socket"),
    ("socket", "getaddrinfo"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("os", "system"),
    ("os", "waitpid"),
}

#: Method names that block on a raw socket (or file made from one).
BLOCKING_METHODS = {
    "recv",
    "recv_into",
    "recvfrom",
    "sendall",
    "accept",
    "makefile",
}

#: Synchronous client round-trips: called un-awaited inside a coroutine
#: they either block the loop (``ServiceClient``) or silently drop the
#: coroutine (``AsyncServiceClient``, missing ``await``).
SYNC_CLIENT_METHODS = {"request", "ping"}

#: Call sites whose *arguments* are sanctioned (scheduled or off-loop).
_SCHEDULERS = {
    "gather",
    "create_task",
    "ensure_future",
    "wait_for",
    "shield",
    "to_thread",
    "run_in_executor",
}

DEFAULT_TARGETS = ("src/repro/service", "src/repro/shard")


@dataclass(frozen=True)
class Finding:
    code: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _dotted(func: ast.expr) -> tuple[str, str] | None:
    """``module.attr`` for an Attribute call on a plain Name, else None."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def _sanctioned_calls(tree: ast.AST) -> set[int]:
    """ids of Call nodes awaited or handed to a scheduler/executor."""
    sanctioned: set[int] = set()

    def mark(node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                sanctioned.add(id(child))

    for node in ast.walk(tree):
        if isinstance(node, ast.Await):
            mark(node.value)
        elif isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            if name in _SCHEDULERS:
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    mark(arg)
    return sanctioned


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, sanctioned: set[int]) -> None:
        self.path = path
        self.sanctioned = sanctioned
        self.findings: list[Finding] = []
        self._async_depth = 0

    # -- function scoping: a nested sync def runs on whatever thread calls
    # it later, so it leaves the enclosing coroutine's context.

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = saved

    def visit_Lambda(self, node: ast.Lambda) -> None:
        saved, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = saved

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    # -- rules

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth and id(node) not in self.sanctioned:
            dotted = _dotted(node.func)
            if dotted in BLOCKING_MODULE_CALLS:
                self._add(
                    "CC001",
                    node,
                    f"blocking call {dotted[0]}.{dotted[1]}() inside "
                    f"'async def' — wrap in asyncio.to_thread or use the "
                    f"loop's non-blocking equivalent",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_METHODS
            ):
                self._add(
                    "CC001",
                    node,
                    f"blocking socket method .{node.func.attr}() inside "
                    f"'async def' — use the StreamReader/StreamWriter "
                    f"surface or asyncio.to_thread",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SYNC_CLIENT_METHODS
            ):
                self._add(
                    "CC002",
                    node,
                    f"client round-trip .{node.func.attr}() inside "
                    f"'async def' without await — blocks the loop (sync "
                    f"client) or drops the coroutine (async client)",
                )
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                "CC003",
                node,
                "bare 'except:' swallows CancelledError and "
                "KeyboardInterrupt — catch Exception (or narrower)",
            )
        self.generic_visit(node)

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(code, self.path, getattr(node, "lineno", 0), message)
        )


def lint_source(source: str, name: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns findings sorted by line."""
    tree = ast.parse(source, filename=name)
    visitor = _Visitor(name, _sanctioned_calls(tree))
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.code))


def lint_paths(paths: list[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            findings.extend(lint_source(file.read_text(), str(file)))
    return findings


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    targets = [Path(arg) for arg in args] or [
        Path(target) for target in DEFAULT_TARGETS
    ]
    missing = [target for target in targets if not target.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    for finding in findings:
        print(finding)
    checked = ", ".join(map(str, targets))
    if findings:
        print(f"check_concurrency: {len(findings)} finding(s) in {checked}")
        return 1
    print(f"check_concurrency: clean ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
